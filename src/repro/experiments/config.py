"""Experiment parameter records (paper §8 setup).

The paper's full scale — grids of 10…1024 nodes, 100/1000 objects,
1000 maintenance ops per object, 5-run averages — is expressed by the
``paper_scale`` constructors; the default constructors use the same
shapes at bench-friendly scale (cost *ratios* stabilize after a few
hundred operations; see DESIGN.md "Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

from repro.graphs.generators import paper_grid_sizes

__all__ = [
    "PAPER_ALGORITHMS",
    "CostExperiment",
    "LoadExperiment",
    "ChaosExperiment",
    "ServiceExperiment",
]

#: the four curves of Figs. 4–7 and 12–15
PAPER_ALGORITHMS: tuple[str, ...] = ("MOT", "STUN", "Z-DAT", "Z-DAT+shortcuts")


@dataclass(frozen=True)
class CostExperiment:
    """Parameters of a maintenance/query cost-ratio sweep (Figs. 4–7, 12–15)."""

    grid_sizes: tuple[tuple[int, int], ...] = tuple(paper_grid_sizes())
    num_objects: int = 100
    moves_per_object: int = 1000
    num_queries: int = 200
    reps: int = 5
    seed: int = 0
    algorithms: tuple[str, ...] = PAPER_ALGORITHMS
    mode: Literal["one_by_one", "concurrent"] = "one_by_one"
    concurrent_batch: int = 10  # paper: max 10 concurrent ops per object
    concurrent_queries_per_batch: int = 2  # queries injected while each batch is in flight
    concurrent_shuffle_seed: int = 7  # seed of the concurrent object shuffle
    mobility: Literal["random_walk", "waypoint", "hotspot"] = "random_walk"

    def scaled(
        self,
        num_objects: int | None = None,
        moves_per_object: int | None = None,
        reps: int | None = None,
        grid_sizes: Sequence[tuple[int, int]] | None = None,
        num_queries: int | None = None,
    ) -> "CostExperiment":
        """A smaller copy for benches (same shape, fewer operations)."""
        return CostExperiment(
            grid_sizes=tuple(grid_sizes) if grid_sizes is not None else self.grid_sizes,
            num_objects=num_objects if num_objects is not None else self.num_objects,
            moves_per_object=(
                moves_per_object if moves_per_object is not None else self.moves_per_object
            ),
            num_queries=num_queries if num_queries is not None else self.num_queries,
            reps=reps if reps is not None else self.reps,
            seed=self.seed,
            algorithms=self.algorithms,
            mode=self.mode,
            concurrent_batch=self.concurrent_batch,
            concurrent_queries_per_batch=self.concurrent_queries_per_batch,
            concurrent_shuffle_seed=self.concurrent_shuffle_seed,
            mobility=self.mobility,
        )


@dataclass(frozen=True)
class LoadExperiment:
    """Parameters of a load comparison (Figs. 8–11)."""

    grid_side: int = 32  # 1024 nodes, as in the paper
    num_objects: int = 100
    moves_per_object: int = 10  # Figs. 9/11: after 10 maintenance ops per object
    after_moves: bool = False  # False: just after initialization (Figs. 8/10)
    seed: int = 0
    algorithms: tuple[str, ...] = ("MOT-balanced", "STUN")
    threshold: int = 10  # the paper's "nodes with load > 10" call-out


@dataclass(frozen=True)
class ChaosExperiment:
    """Parameters of one fault-injection run (``python -m repro chaos``).

    The workload shape mirrors :class:`CostExperiment` on a single
    grid; the fault knobs build a :class:`repro.sim.faults.FaultPlan`.
    Crash windows are staggered over the run and each crashed sensor
    restarts after ``crash_duration`` time units (``crash_duration=0``
    makes crashes permanent). ``fault_seed`` seeds both the fault plan
    and the choice of crash victims, independently of the workload seed.
    """

    side: int = 8
    num_objects: int = 10
    moves_per_object: int = 40
    num_queries: int = 40
    seed: int = 0
    algorithm: str = "MOT"
    message_loss: float = 0.1
    delay_jitter: float = 0.25
    num_crashes: int = 1
    crash_duration: float = 40.0
    fault_seed: int = 1
    batch: int = 10
    queries_per_batch: int = 2
    shuffle_seed: int = 7

    def __post_init__(self) -> None:
        if not 0.0 <= self.message_loss < 1.0:
            raise ValueError("message_loss must be in [0, 1)")
        if self.num_crashes < 0 or self.crash_duration < 0:
            raise ValueError("num_crashes and crash_duration must be >= 0")


@dataclass(frozen=True)
class ServiceExperiment:
    """Parameters of a service sweep: shard count × offered load.

    Each cell replays the same workload trace against a fresh
    :class:`~repro.serve.service.TrackingService` under the
    deterministic virtual clock (:mod:`repro.serve.bench`), so cells
    differ *only* in shard count and offered rate — the knobs whose
    interaction (service capacity ``shards / service_time_base_s`` vs
    arrival rate) the sweep is mapping. Every cell is audited against
    the sequential reference.
    """

    side: int = 8
    num_objects: int = 24
    moves_per_object: int = 10
    num_queries: int = 60
    shard_counts: tuple[int, ...] = (1, 2, 4)
    rates: tuple[float, ...] = (200.0, 1000.0, 4000.0)
    seed: int = 0
    batch_size: int = 16
    queue_capacity: int = 32
    service_time_base_s: float = 1e-3
    mobility: Literal["random_walk", "waypoint", "hotspot", "oscillation"] = "random_walk"

    def __post_init__(self) -> None:
        if not self.shard_counts or not self.rates:
            raise ValueError("shard_counts and rates must be non-empty")
        if any(s < 1 for s in self.shard_counts):
            raise ValueError("shard counts must be >= 1")
        if any(r <= 0 for r in self.rates):
            raise ValueError("rates must be positive")
