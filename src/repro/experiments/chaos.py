"""Chaos harness: the concurrent protocol under an injected fault plan.

One :func:`run_chaos` call drives the full degraded-network story the
ROADMAP's "production failure modes" goal asks for:

1. a §8-shaped workload runs through a concurrent tracker whose engine
   has a :class:`~repro.sim.faults.FaultInjector` attached — messages
   drop, latencies jitter, sensors crash and restart mid-protocol while
   the ack/retry transport keeps operations alive;
2. the final state is audited against the sequential reference (true
   proxies, spines, zero garbage, no parked queries, post-drain queries
   answering exactly);
3. the same crash schedule is replayed into
   :class:`~repro.core.fault_tolerant.FaultTolerantMOT` — §7's
   role-relocation path — so the report also accounts the churn cost
   (role transfers, object rehoming, rebuild flags) of the identical
   failure scenario, with rehome-tagged ledger splits.

``python -m repro chaos`` renders the resulting :class:`ChaosReport`
as JSON.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field

from repro.core.fault_tolerant import FaultTolerantMOT
from repro.experiments.config import ChaosExperiment
from repro.experiments.runner import execute_concurrent, make_concurrent_tracker
from repro.graphs.generators import grid_network
from repro.sim.concurrent import ConcurrentTracker
from repro.sim.faults import CrashWindow, FaultPlan, crash_schedule_events
from repro.sim.workload import Workload, make_workload

__all__ = ["ChaosReport", "ConsistencyCheck", "build_fault_plan", "run_chaos"]


@dataclass(frozen=True)
class ConsistencyCheck:
    """Final-state audit of one chaos run against the sequential reference."""

    true_proxies_match: bool  # tracker ground truth == workload trail ends
    spines_at_true_proxy: bool  # every spine bottoms out at the true proxy
    waiting_queries: int  # queries still parked after the drain (must be 0)
    garbage_entries: int  # off-spine DL entries after the drain (must be 0)
    post_drain_queries_exact: bool  # fresh queries return the exact position

    @property
    def ok(self) -> bool:
        """Whether every invariant held."""
        return (
            self.true_proxies_match
            and self.spines_at_true_proxy
            and self.waiting_queries == 0
            and self.garbage_entries == 0
            and self.post_drain_queries_exact
        )


@dataclass
class ChaosReport:
    """Everything one chaos run measured (JSON-ready via :meth:`as_dict`)."""

    experiment: ChaosExperiment
    plan: FaultPlan
    delivery: dict[str, int]
    retries: int
    transmit_failures: int
    repairs: int
    failed_ops: list[tuple[str, str, int]]
    fallback_queries: int
    moves_submitted: int
    moves_completed: int
    queries_submitted: int
    queries_completed: int
    maintenance_cost_ratio: float
    query_cost_ratio: float
    consistency: ConsistencyCheck
    churn: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """The report as a JSON-ready dict."""
        out = asdict(self)
        out["plan"] = {
            "seed": self.plan.seed,
            "message_loss": self.plan.message_loss,
            "delay_jitter": self.plan.delay_jitter,
            "crashes": [
                {"node": repr(w.node), "start": w.start, "end": w.end}
                for w in self.plan.crashes
            ],
        }
        out["consistency"]["ok"] = self.consistency.ok
        return out


def build_fault_plan(exp: ChaosExperiment, net) -> FaultPlan:
    """The experiment's :class:`FaultPlan` over ``net``.

    Crash victims are sampled without replacement from ``fault_seed``
    (at most ``n - 2`` of them, so the network never empties) and their
    outage windows are staggered so the run sees distinct failures
    rather than one mass outage. ``crash_duration == 0`` marks the
    victims as never restarting.
    """
    rng = random.Random(exp.fault_seed)
    num = min(exp.num_crashes, max(net.n - 2, 0))
    victims = rng.sample(list(net.nodes), num) if num else []
    crashes = []
    for k, node in enumerate(victims):
        start = 5.0 + k * (exp.crash_duration + 15.0)
        end = start + exp.crash_duration if exp.crash_duration > 0 else None
        crashes.append(CrashWindow(node=node, start=start, end=end))
    return FaultPlan(
        seed=exp.fault_seed,
        message_loss=exp.message_loss,
        delay_jitter=exp.delay_jitter,
        crashes=tuple(crashes),
    )


def check_consistency(
    tracker: ConcurrentTracker, workload: Workload, probe_source=None
) -> ConsistencyCheck:
    """Audit a drained tracker against the workload's sequential outcome."""
    expected = dict(workload.starts)
    for m in workload.moves:
        expected[m.obj] = m.new
    true_ok = tracker.true_proxy == expected
    spine_ok = all(
        tracker.physical(tracker.spine_of(obj)[0]) == expected[obj] for obj in expected
    )
    waiting = tracker.waiting_queries
    garbage = len(tracker.garbage_entries())
    source = probe_source if probe_source is not None else workload.net.nodes[0]
    before = len(tracker.query_results)
    for obj in expected:
        tracker.submit_query(tracker.engine.now, obj, source)
    tracker.run()
    post_ok = all(
        r.proxy == expected[r.obj] for r in tracker.query_results[before:]
    )
    return ConsistencyCheck(
        true_proxies_match=true_ok,
        spines_at_true_proxy=spine_ok,
        waiting_queries=waiting,
        garbage_entries=garbage,
        post_drain_queries_exact=post_ok,
    )


def replay_churn(net, plan: FaultPlan, workload: Workload, seed: int = 0) -> dict[str, float]:
    """Replay the plan's crash schedule through §7's relocation path.

    Crashes become announced departures, restarts become arrivals; the
    tracker rehomes proxied objects (rehome-tagged in the ledger) and
    transfers ``HS`` roles. Returns the churn accounting of the bridge.
    """
    from repro.hierarchy.structure import build_hierarchy

    tracker = FaultTolerantMOT(build_hierarchy(net, seed=seed))
    for obj, start in workload.starts.items():
        tracker.publish(obj, start)
    roles = entries = rehomed = 0
    for ev in crash_schedule_events(plan):
        if ev.kind == "crash":
            report = tracker.handle_departure(ev.node)
            roles += report.roles_transferred
            entries += report.entries_transferred
            rehomed += len(report.objects_rehomed)
        else:
            tracker.handle_arrival(ev.node)
    ledger = tracker.ledger
    return {
        "departures": float(len(tracker.departure_reports)),
        "roles_transferred": float(roles),
        "entries_transferred": float(entries),
        "objects_rehomed": float(rehomed),
        "churn_cost": tracker.churn_cost,
        "rehome_cost": ledger.rehome_cost,
        "rehome_ops": float(ledger.rehome_ops),
        "maintenance_cost_ratio": ledger.maintenance_cost_ratio,
        "maintenance_cost_ratio_excluding_rehomes": (
            ledger.maintenance_cost_ratio_excluding_rehomes
        ),
        "needs_rebuild": float(tracker.needs_rebuild),
    }


def run_chaos(exp: ChaosExperiment) -> ChaosReport:
    """Run one chaos experiment end to end (see module docstring)."""
    net = grid_network(exp.side, exp.side)
    wl = make_workload(
        net,
        num_objects=exp.num_objects,
        moves_per_object=exp.moves_per_object,
        num_queries=exp.num_queries,
        seed=exp.seed,
    )
    plan = build_fault_plan(exp, net)
    tracker = make_concurrent_tracker(exp.algorithm, net, wl.traffic, seed=exp.seed)
    injector = tracker.attach_faults(plan)
    execute_concurrent(
        tracker,
        wl,
        batch=exp.batch,
        queries_per_batch=exp.queries_per_batch,
        shuffle_seed=exp.shuffle_seed,
    )
    queries_completed = len(tracker.query_results)
    moves_completed = len(tracker.move_results)
    consistency = check_consistency(tracker, wl)
    churn = replay_churn(net, plan, wl, seed=exp.seed) if plan.crashes else {}
    return ChaosReport(
        experiment=exp,
        plan=plan,
        delivery=injector.stats(),
        retries=tracker.retries,
        transmit_failures=tracker.transmit_failures,
        repairs=tracker.repairs,
        failed_ops=list(tracker.failed_ops),
        fallback_queries=tracker.fallback_queries,
        moves_submitted=len(wl.moves),
        moves_completed=moves_completed,
        queries_submitted=len(wl.queries),
        queries_completed=queries_completed,
        maintenance_cost_ratio=tracker.ledger.maintenance_cost_ratio,
        query_cost_ratio=tracker.ledger.query_cost_ratio,
        consistency=consistency,
        churn=churn,
    )
