"""Algorithm factories and execution drivers for the §8 experiments."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable

from repro.baselines.dat import DATTracker
from repro.baselines.stun import STUNTracker, build_dab_tree
from repro.baselines.traffic import TrafficProfile
from repro.baselines.zdat import ZDATTracker, build_zdat_tree
from repro.core.costs import CostLedger
from repro.core.mot import MOTConfig, MOTTracker
from repro.core.mot_balanced import BalancedMOTTracker
from repro.experiments.config import CostExperiment, LoadExperiment
from repro.graphs.generators import grid_network
from repro.graphs.network import SensorNetwork
from repro.hierarchy.structure import build_hierarchy
from repro.metrics.ratios import RatioStats, summarize_ratios
from repro.perf import PERF
from repro.sim.concurrent import ConcurrentTracker
from repro.sim.concurrent_balanced import ConcurrentBalancedMOT
from repro.sim.concurrent_mot import ConcurrentMOT
from repro.sim.concurrent_tree import ConcurrentTreeTracker
from repro.sim.workload import Workload, make_workload

Node = Hashable

__all__ = [
    "make_tracker",
    "make_concurrent_tracker",
    "execute_one_by_one",
    "execute_concurrent",
    "run_cost_sweep",
    "run_load_experiment",
    "CostSweepResult",
]

#: algorithms available to the sweep drivers
ALGORITHMS = ("MOT", "MOT-balanced", "STUN", "DAT", "Z-DAT", "Z-DAT+shortcuts")


def make_tracker(
    name: str,
    net: SensorNetwork,
    traffic: TrafficProfile,
    seed: int = 0,
    mot_config: MOTConfig | None = None,
):
    """One-by-one tracker factory for the §8 algorithm names.

    MOT variants never look at ``traffic`` (they are traffic-oblivious);
    the baselines receive the workload's exact profile. Construction is
    timed under ``runner.build.<name>`` in :data:`repro.perf.PERF`.
    """
    with PERF.timer(f"runner.build.{name}"):
        return _make_tracker(name, net, traffic, seed, mot_config)


def _make_tracker(
    name: str,
    net: SensorNetwork,
    traffic: TrafficProfile,
    seed: int = 0,
    mot_config: MOTConfig | None = None,
):
    if name == "MOT":
        return MOTTracker.build(net, mot_config, seed=seed)
    if name == "MOT-balanced":
        cfg = mot_config or MOTConfig()
        hs = build_hierarchy(
            net,
            seed=seed,
            parent_set_radius_factor=cfg.parent_set_radius_factor,
            special_parent_gap=cfg.special_parent_gap,
            use_parent_sets=cfg.use_parent_sets,
        )
        return BalancedMOTTracker(hs, cfg)
    if name == "STUN":
        return STUNTracker(net, traffic)
    if name == "DAT":
        return DATTracker(net, traffic)
    if name == "Z-DAT":
        return ZDATTracker(net, traffic)
    if name == "Z-DAT+shortcuts":
        return ZDATTracker(net, traffic, shortcuts=True)
    raise ValueError(f"unknown algorithm {name!r}; choose from {ALGORITHMS}")


def make_concurrent_tracker(
    name: str,
    net: SensorNetwork,
    traffic: TrafficProfile,
    seed: int = 0,
) -> ConcurrentTracker:
    """Concurrent tracker factory (Figs. 12–15 curves)."""
    if name == "MOT":
        return ConcurrentMOT(build_hierarchy(net, seed=seed))
    if name == "MOT-balanced":
        return ConcurrentBalancedMOT(build_hierarchy(net, seed=seed))
    if name == "STUN":
        return ConcurrentTreeTracker(build_dab_tree(net, traffic))
    if name == "Z-DAT":
        return ConcurrentTreeTracker(build_zdat_tree(net, traffic))
    if name == "Z-DAT+shortcuts":
        return ConcurrentTreeTracker(build_zdat_tree(net, traffic), query_shortcuts=True)
    raise ValueError(f"unknown concurrent algorithm {name!r}")


# ----------------------------------------------------------------------
# execution drivers
# ----------------------------------------------------------------------
def execute_one_by_one(tracker, workload: Workload) -> CostLedger:
    """Publish, apply all moves in order, then run all queries.

    Each phase is timed under ``runner.*`` in :data:`repro.perf.PERF`
    so the perf report can split workload latency by phase.
    """
    with PERF.timer("runner.publish_phase"):
        for obj, start in workload.starts.items():
            tracker.publish(obj, start)
    with PERF.timer("runner.move_phase"):
        for m in workload.moves:
            tracker.move(m.obj, m.new)
    with PERF.timer("runner.query_phase"):
        for q in workload.queries:
            tracker.query(q.obj, q.source)
    return tracker.ledger


def execute_concurrent(
    tracker: ConcurrentTracker,
    workload: Workload,
    batch: int = 10,
    queries_per_batch: int = 2,
    shuffle_seed: int = 7,
) -> CostLedger:
    """The paper's concurrent schedule (§8).

    Objects are processed in random order; each object's moves run in
    batches of ``batch`` simultaneously-outstanding operations ("we fix
    the maximum number of concurrent operations for an object at any
    time to 10"), and queries are injected while maintenance is in
    flight so query/maintenance overlap is exercised (Figs. 14/15).
    """
    for obj, start in workload.starts.items():
        tracker.publish(obj, start)
    per_obj: dict[str, list] = {o: [] for o in workload.starts}
    for m in workload.moves:
        per_obj[m.obj].append(m)
    objs = list(per_obj)
    random.Random(shuffle_seed).shuffle(objs)
    qiter = iter(workload.queries)
    for obj in objs:
        moves = per_obj[obj]
        for i in range(0, len(moves), batch):
            t0 = tracker.engine.now
            for k, m in enumerate(moves[i : i + batch]):
                tracker.submit_move(t0 + 0.01 * k, m.obj, m.new)
            for _ in range(queries_per_batch):
                q = next(qiter, None)
                if q is not None:
                    tracker.submit_query(t0 + 0.05, q.obj, q.source)
            tracker.run()
    # any queries beyond the batch budget run against the quiesced state
    for q in qiter:
        tracker.submit_query(tracker.engine.now, q.obj, q.source)
    tracker.run()
    return tracker.ledger


# ----------------------------------------------------------------------
# sweeps
# ----------------------------------------------------------------------
@dataclass
class CostSweepResult:
    """Per-algorithm maintenance/query ratio series over network sizes."""

    experiment: CostExperiment
    sizes: list[int] = field(default_factory=list)
    maintenance: dict[str, list[RatioStats]] = field(default_factory=dict)
    query: dict[str, list[RatioStats]] = field(default_factory=dict)

    def series(self, metric: str, algorithm: str) -> list[float]:
        """Mean cost-ratio curve of one algorithm over the size sweep."""
        table = self.maintenance if metric == "maintenance" else self.query
        return [s.mean for s in table[algorithm]]


def run_cost_sweep(exp: CostExperiment) -> CostSweepResult:
    """Run the Figs. 4–7 / 12–15 sweep for ``exp``."""
    result = CostSweepResult(experiment=exp)
    result.maintenance = {a: [] for a in exp.algorithms}
    result.query = {a: [] for a in exp.algorithms}
    for rows, cols in exp.grid_sizes:
        net = grid_network(rows, cols)
        result.sizes.append(net.n)
        maint: dict[str, list[float]] = {a: [] for a in exp.algorithms}
        query: dict[str, list[float]] = {a: [] for a in exp.algorithms}
        for rep in range(exp.reps):
            wl = make_workload(
                net,
                num_objects=exp.num_objects,
                moves_per_object=exp.moves_per_object,
                num_queries=exp.num_queries,
                seed=exp.seed + 1000 * rep,
                mobility=exp.mobility,
            )
            for alg in exp.algorithms:
                if exp.mode == "one_by_one":
                    tracker = make_tracker(alg, net, wl.traffic, seed=exp.seed + rep)
                    ledger = execute_one_by_one(tracker, wl)
                else:
                    tracker = make_concurrent_tracker(alg, net, wl.traffic, seed=exp.seed + rep)
                    ledger = execute_concurrent(
                        tracker,
                        wl,
                        batch=exp.concurrent_batch,
                        queries_per_batch=exp.concurrent_queries_per_batch,
                        shuffle_seed=exp.concurrent_shuffle_seed,
                    )
                maint[alg].append(ledger.maintenance_cost_ratio)
                query[alg].append(ledger.query_cost_ratio)
        for alg in exp.algorithms:
            result.maintenance[alg].append(summarize_ratios(maint[alg]))
            result.query[alg].append(summarize_ratios(query[alg]))
    return result


def run_load_experiment(exp: LoadExperiment) -> dict[str, dict[Node, int]]:
    """Per-node loads for the Figs. 8–11 comparisons."""
    net = grid_network(exp.grid_side, exp.grid_side)
    wl = make_workload(
        net,
        num_objects=exp.num_objects,
        moves_per_object=exp.moves_per_object,
        num_queries=0,
        seed=exp.seed,
    )
    out: dict[str, dict[Node, int]] = {}
    for alg in exp.algorithms:
        tracker = make_tracker(alg, net, wl.traffic, seed=exp.seed)
        for obj, start in wl.starts.items():
            tracker.publish(obj, start)
        if exp.after_moves:
            for m in wl.moves:
                tracker.move(m.obj, m.new)
        out[alg] = tracker.load_per_node()
    return out
