"""Service sweep: latency/throughput/backpressure vs shards × load.

One :func:`run_service_sweep` call maps the service layer's operating
envelope: for every (shard count, offered rate) cell it replays the
same virtual-clock ``serve-bench`` run (:mod:`repro.serve.bench`) and
collects the numbers that characterise a queueing system —

- latency percentiles (p50/p95/p99) and achieved throughput,
- admission-control outcomes (rate/queue rejections),
- batching effectiveness (mean batch size, coalesced queries),
- the consistency audit (sharded answers vs the sequential reference).

The expected shape is classic: while offered load sits below the
service capacity ``shards / service_time_base_s`` the achieved
throughput tracks the offered rate and latency stays near the service
time; past saturation, queues fill, the queue-rejection path carries
the overflow, and more shards move the knee proportionally to the
right. ``ServiceSweepReport.ok`` is the gate CI cares about: every
cell's audit must be clean regardless of where it sits on that curve.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.experiments.config import ServiceExperiment
from repro.serve.bench import ServeBenchConfig, run_serve_bench

__all__ = ["ServiceSweepReport", "run_service_sweep"]


@dataclass
class ServiceSweepReport:
    """All cells of one shards × rate sweep (JSON-ready via :meth:`as_dict`)."""

    experiment: ServiceExperiment
    #: one row per (shards, rate) cell, in sweep order
    cells: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every cell's consistency audit passed."""
        return all(cell["audit_ok"] for cell in self.cells)

    def cell(self, shards: int, rate: float) -> dict:
        """The row of one (shards, rate) combination."""
        for row in self.cells:
            if row["shards"] == shards and row["rate"] == rate:
                return row
        raise KeyError((shards, rate))

    def as_dict(self) -> dict:
        """JSON-ready view."""
        return {
            "experiment": asdict(self.experiment),
            "ok": self.ok,
            "cells": list(self.cells),
        }


def _cell_row(shards: int, rate: float, report: dict) -> dict:
    lat = report["latency_ms"]["all"]
    lg = report["loadgen"]
    service = report["service"]
    return {
        "shards": shards,
        "rate": rate,
        "offered": lg["offered"],
        "admitted": lg["admitted"],
        "rejected_rate": lg["rejected"]["rate"],
        "rejected_queue": lg["rejected"]["queue"],
        "completed": lg["completed"],
        "throughput_ops_s": report["achieved_throughput_ops_s"],
        "p50_ms": lat["p50_ms"],
        "p95_ms": lat["p95_ms"],
        "p99_ms": lat["p99_ms"],
        "queries_coalesced": service["queries"]["coalesced"],
        "batches": service["batches"],
        "trace_digest": lg["trace_digest"],
        "audit_ok": report["audit"]["ok"],
        "audit_mismatches": (
            report["audit"]["proxy_mismatches"] + report["audit"]["cost_mismatches"]
        ),
    }


def run_service_sweep(exp: ServiceExperiment | None = None) -> ServiceSweepReport:
    """Run every (shards, rate) cell and collect the envelope (see module docs)."""
    exp = exp or ServiceExperiment()
    report = ServiceSweepReport(experiment=exp)
    for shards in exp.shard_counts:
        for rate in exp.rates:
            cfg = ServeBenchConfig(
                nodes=exp.side * exp.side,
                num_objects=exp.num_objects,
                moves_per_object=exp.moves_per_object,
                num_queries=exp.num_queries,
                shards=shards,
                rate=rate,
                seed=exp.seed,
                batch_size=exp.batch_size,
                queue_capacity=exp.queue_capacity,
                service_time_base_s=exp.service_time_base_s,
                mobility=exp.mobility,
            )
            report.cells.append(_cell_row(shards, rate, run_serve_bench(cfg)))
    return report
