"""Experiment harness regenerating every figure of the paper's §8.

- :mod:`repro.experiments.config` — experiment parameter records.
- :mod:`repro.experiments.runner` — algorithm factories and the
  one-by-one / concurrent execution drivers.
- :mod:`repro.experiments.figures` — one entry point per paper figure
  (``fig4`` … ``fig15``), each returning a printable result.
- :mod:`repro.experiments.reporting` — plain-text tables of the series
  the paper plots.
"""

from repro.experiments.config import (
    CostExperiment,
    LoadExperiment,
    PAPER_ALGORITHMS,
    ServiceExperiment,
)
from repro.experiments.runner import (
    make_tracker,
    execute_one_by_one,
    execute_concurrent,
    run_cost_sweep,
    run_load_experiment,
)
from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.reporting import format_cost_table, format_load_table
from repro.experiments.service import ServiceSweepReport, run_service_sweep

__all__ = [
    "CostExperiment",
    "LoadExperiment",
    "PAPER_ALGORITHMS",
    "ServiceExperiment",
    "ServiceSweepReport",
    "run_service_sweep",
    "make_tracker",
    "execute_one_by_one",
    "execute_concurrent",
    "run_cost_sweep",
    "run_load_experiment",
    "FIGURES",
    "run_figure",
    "format_cost_table",
    "format_load_table",
]
