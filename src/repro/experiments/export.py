"""CSV export of experiment results.

Turns :class:`~repro.experiments.runner.CostSweepResult` and the
Figs. 8–11 load mappings into CSV so the regenerated figures can be
re-plotted with any external tool (the repository itself stays
plotting-library-free).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Hashable, Mapping

from repro.experiments.runner import CostSweepResult

Node = Hashable

__all__ = ["cost_sweep_to_csv", "loads_to_csv", "write_csv"]


def cost_sweep_to_csv(result: CostSweepResult, metric: str) -> str:
    """One row per network size; per-algorithm mean and std columns."""
    if metric not in ("maintenance", "query"):
        raise ValueError("metric must be 'maintenance' or 'query'")
    table = result.maintenance if metric == "maintenance" else result.query
    algs = list(table)
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    header = ["nodes"]
    for a in algs:
        header += [f"{a}_mean", f"{a}_std"]
    writer.writerow(header)
    for i, n in enumerate(result.sizes):
        row: list = [n]
        for a in algs:
            stats = table[a][i]
            row += [f"{stats.mean:.6g}", f"{stats.std:.6g}"]
        writer.writerow(row)
    return buf.getvalue()


def loads_to_csv(loads: Mapping[str, Mapping[Node, int]]) -> str:
    """One row per sensor; per-algorithm load columns (Figs. 8–11 data)."""
    if not loads:
        raise ValueError("no load series to export")
    algs = list(loads)
    nodes = sorted(loads[algs[0]])
    for a in algs[1:]:
        if sorted(loads[a]) != nodes:
            raise ValueError("load series cover different sensors")
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(["node"] + algs)
    for v in nodes:
        writer.writerow([v] + [loads[a][v] for a in algs])
    return buf.getvalue()


def write_csv(content: str, path: str | Path) -> Path:
    """Write exported CSV to ``path`` (parent directories created)."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(content)
    return p
