"""One entry point per figure of the paper's evaluation (§8).

Each ``figN`` function builds the figure's experiment at the paper's
parameters, optionally scaled down for bench runs (``scale`` < 1.0
shrinks the operation counts, never the network sizes — the x-axis of
every figure is preserved). ``run_figure("fig4", scale=0.05)`` is what
the benchmark suite calls; ``python -m repro.experiments.figures fig4``
prints a figure's series from the command line (``--full`` for paper
scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments.config import CostExperiment, LoadExperiment
from repro.experiments.plotting import ascii_histogram, render_cost_figure
from repro.experiments.reporting import format_cost_table, format_load_table
from repro.experiments.runner import (
    CostSweepResult,
    run_cost_sweep,
    run_load_experiment,
)
from repro.metrics.load import LoadStats

__all__ = ["FigureResult", "FIGURES", "run_figure"]


@dataclass
class FigureResult:
    """A regenerated figure: its series plus a printable table."""

    figure: str
    description: str
    table: str
    cost_result: CostSweepResult | None = None
    loads: dict[str, dict] | None = None
    chart: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        body = f"== {self.figure}: {self.description} ==\n{self.table}"
        if self.chart:
            body += f"\n\n{self.chart}"
        return body


def _cost_figure(
    figure: str,
    description: str,
    exp: CostExperiment,
    metric: str,
    scale: float,
) -> FigureResult:
    if not (0.0 < scale <= 1.0):
        raise ValueError("scale must be in (0, 1]")
    if scale < 1.0:
        # total work is objects x moves; for the 1000-object figures the
        # object axis is scaled quadratically so a bench run stays within
        # a few times the 100-object figures' cost (cost ratios are
        # insensitive to the object count — objects are independent)
        obj_scale = scale if exp.num_objects <= 100 else scale * scale
        exp = exp.scaled(
            num_objects=max(10, int(exp.num_objects * obj_scale)),
            moves_per_object=max(20, int(exp.moves_per_object * scale)),
            reps=max(2, int(exp.reps * scale * 5)),
        )
    result = run_cost_sweep(exp)
    return FigureResult(
        figure=figure,
        description=description,
        table=format_cost_table(result, metric),
        cost_result=result,
        chart=render_cost_figure(result, metric),
    )


def _load_figure(figure: str, description: str, exp: LoadExperiment, scale: float) -> FigureResult:
    # Load figures always run at the paper's full scale: the snapshot is
    # a sub-second computation, and shrinking the grid while keeping 100
    # objects would invert the load picture (100 objects on 64 sensors
    # saturate every node). ``scale`` is accepted for interface
    # uniformity with the cost figures and ignored.
    del scale
    loads = run_load_experiment(exp)
    stats = {alg: LoadStats.from_loads(l, exp.threshold) for alg, l in loads.items()}
    charts = "\n\n".join(
        ascii_histogram(
            stats[alg].histogram(loads[alg]),
            title=f"{alg}: sensors per load bucket",
        )
        for alg in loads
    )
    return FigureResult(
        figure=figure,
        description=description,
        table=format_load_table(stats),
        loads=loads,
        chart=charts,
    )


# ----------------------------------------------------------------------
# figure definitions (paper parameters)
# ----------------------------------------------------------------------
def fig4(scale: float = 1.0) -> FigureResult:
    """Maintenance cost ratio, one-by-one, 100 objects (paper Fig. 4)."""
    return _cost_figure(
        "fig4", "maintenance cost ratio, one-by-one, 100 objects",
        CostExperiment(num_objects=100, mode="one_by_one"), "maintenance", scale,
    )


def fig5(scale: float = 1.0) -> FigureResult:
    """Maintenance cost ratio, one-by-one, 1000 objects (paper Fig. 5)."""
    return _cost_figure(
        "fig5", "maintenance cost ratio, one-by-one, 1000 objects",
        CostExperiment(num_objects=1000, mode="one_by_one"), "maintenance", scale,
    )


def fig6(scale: float = 1.0) -> FigureResult:
    """Query cost ratio, one-by-one, 100 objects (paper Fig. 6)."""
    return _cost_figure(
        "fig6", "query cost ratio, one-by-one, 100 objects",
        CostExperiment(num_objects=100, mode="one_by_one"), "query", scale,
    )


def fig7(scale: float = 1.0) -> FigureResult:
    """Query cost ratio, one-by-one, 1000 objects (paper Fig. 7)."""
    return _cost_figure(
        "fig7", "query cost ratio, one-by-one, 1000 objects",
        CostExperiment(num_objects=1000, mode="one_by_one"), "query", scale,
    )


def fig8(scale: float = 1.0) -> FigureResult:
    """Load/node, MOT vs STUN, just after initialization (paper Fig. 8)."""
    return _load_figure(
        "fig8", "load per node, MOT vs STUN, after initialization",
        LoadExperiment(algorithms=("MOT-balanced", "STUN"), after_moves=False), scale,
    )


def fig9(scale: float = 1.0) -> FigureResult:
    """Load/node, MOT vs STUN, after 10 maintenance ops/object (paper Fig. 9)."""
    return _load_figure(
        "fig9", "load per node, MOT vs STUN, after 10 moves per object",
        LoadExperiment(algorithms=("MOT-balanced", "STUN"), after_moves=True), scale,
    )


def fig10(scale: float = 1.0) -> FigureResult:
    """Load/node, MOT vs Z-DAT, just after initialization (paper Fig. 10)."""
    return _load_figure(
        "fig10", "load per node, MOT vs Z-DAT, after initialization",
        LoadExperiment(algorithms=("MOT-balanced", "Z-DAT"), after_moves=False), scale,
    )


def fig11(scale: float = 1.0) -> FigureResult:
    """Load/node, MOT vs Z-DAT, after 10 maintenance ops/object (paper Fig. 11)."""
    return _load_figure(
        "fig11", "load per node, MOT vs Z-DAT, after 10 moves per object",
        LoadExperiment(algorithms=("MOT-balanced", "Z-DAT"), after_moves=True), scale,
    )


def fig12(scale: float = 1.0) -> FigureResult:
    """Maintenance cost ratio, concurrent, 100 objects (paper Fig. 12)."""
    return _cost_figure(
        "fig12", "maintenance cost ratio, concurrent, 100 objects",
        CostExperiment(num_objects=100, mode="concurrent"), "maintenance", scale,
    )


def fig13(scale: float = 1.0) -> FigureResult:
    """Maintenance cost ratio, concurrent, 1000 objects (paper Fig. 13)."""
    return _cost_figure(
        "fig13", "maintenance cost ratio, concurrent, 1000 objects",
        CostExperiment(num_objects=1000, mode="concurrent"), "maintenance", scale,
    )


def fig14(scale: float = 1.0) -> FigureResult:
    """Query cost ratio, concurrent, 100 objects (paper Fig. 14)."""
    return _cost_figure(
        "fig14", "query cost ratio, concurrent, 100 objects",
        CostExperiment(num_objects=100, mode="concurrent"), "query", scale,
    )


def fig15(scale: float = 1.0) -> FigureResult:
    """Query cost ratio, concurrent, 1000 objects (paper Fig. 15)."""
    return _cost_figure(
        "fig15", "query cost ratio, concurrent, 1000 objects",
        CostExperiment(num_objects=1000, mode="concurrent"), "query", scale,
    )


FIGURES: dict[str, Callable[[float], FigureResult]] = {
    "fig4": fig4, "fig5": fig5, "fig6": fig6, "fig7": fig7,
    "fig8": fig8, "fig9": fig9, "fig10": fig10, "fig11": fig11,
    "fig12": fig12, "fig13": fig13, "fig14": fig14, "fig15": fig15,
}


def run_figure(name: str, scale: float = 1.0) -> FigureResult:
    """Regenerate one paper figure by name (``"fig4"`` … ``"fig15"``)."""
    try:
        fn = FIGURES[name]
    except KeyError:
        raise ValueError(f"unknown figure {name!r}; choose from {sorted(FIGURES)}") from None
    return fn(scale)


def main(argv: list[str] | None = None) -> None:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(description="Regenerate a paper figure")
    parser.add_argument("figure", choices=sorted(FIGURES))
    parser.add_argument("--scale", type=float, default=0.05,
                        help="operation-count scale (default 0.05; use 1.0 for paper scale)")
    parser.add_argument("--full", action="store_true", help="shorthand for --scale 1.0")
    args = parser.parse_args(argv)
    scale = 1.0 if args.full else args.scale
    print(run_figure(args.figure, scale=scale))


if __name__ == "__main__":  # pragma: no cover
    main()
