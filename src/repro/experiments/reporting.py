"""Plain-text tables of the series the paper plots."""

from __future__ import annotations

from typing import Mapping

from repro.metrics.load import LoadStats

__all__ = ["format_cost_table", "format_load_table"]


def format_cost_table(result, metric: str) -> str:
    """Cost-ratio series per algorithm over network sizes.

    ``metric`` is ``"maintenance"`` or ``"query"``; rows are network
    sizes (the x-axis of Figs. 4–7 / 12–15), columns the algorithms.
    """
    if metric not in ("maintenance", "query"):
        raise ValueError("metric must be 'maintenance' or 'query'")
    table = result.maintenance if metric == "maintenance" else result.query
    algs = list(table)
    header = f"{'nodes':>7} | " + " | ".join(f"{a:>16}" for a in algs)
    sep = "-" * len(header)
    lines = [header, sep]
    for i, n in enumerate(result.sizes):
        cells = " | ".join(f"{table[a][i].mean:13.2f} ±{table[a][i].std:4.2f}" for a in algs)
        lines.append(f"{n:>7} | {cells}")
    return "\n".join(lines)


def format_load_table(stats: Mapping[str, LoadStats]) -> str:
    """Headline load numbers per algorithm (the Figs. 8–11 call-outs)."""
    header = f"{'algorithm':>16} | {'max load':>8} | {'mean':>7} | {'nodes>thr':>9} | {'total':>7}"
    lines = [header, "-" * len(header)]
    for alg, s in stats.items():
        lines.append(
            f"{alg:>16} | {s.max_load:>8} | {s.mean_load:>7.2f} | "
            f"{s.above_threshold:>9} | {s.total:>7}"
        )
    return "\n".join(lines)
