"""``repro.staticcheck`` — project-specific AST lint rules (``repro lint``).

Generic linters cannot know that ``net.distance`` inside a loop is an
O(n · Dijkstra) regression, that unseeded randomness invalidates the
paper's cost-ratio tables, or that ``networkx`` shortest paths bypass
the batched distance oracle. This package encodes those invariants as
eight fixture-tested AST rules (stdlib :mod:`ast` only, no third-party
dependencies):

========  ============================================================
RPL001    per-pair ``*.distance(...)`` inside a loop / comprehension /
          ``sum()``-style reduction — use the batched oracle API
          (``distances_to_many`` / ``pairwise_submatrix`` /
          ``consecutive_distances`` / ``pair_distances``)
RPL002    unseeded randomness (``random.random()``, module-level
          ``np.random.*``, ``random.Random()`` or ``default_rng()``
          without an explicit seed) — thread a ``seed``/``rng`` param
RPL003    cross-module access to private state (``obj._rows`` and
          friends on a receiver other than ``self``/``cls``) — add or
          use a public accessor instead
RPL004    ``==`` / ``!=`` between distance/cost expressions and float
          literals — use :func:`repro.core.costs.close_to`
RPL005    ``networkx`` shortest-path / all-pairs calls outside
          ``repro/graphs/network.py`` — the ``SensorNetwork`` oracle is
          the single distance authority
RPL006    blocking calls (``time.sleep``, synchronous oracle solves,
          file I/O) lexically inside ``async def`` bodies under
          ``repro/serve`` — one blocking call stalls every shard; hoist
          the work into a sync helper or use ``asyncio`` equivalents
RPL007    direct output (``print``, ``logging``, raw
          ``sys.stdout``/``sys.stderr`` writes) inside ``repro/obs`` —
          the tracing layer sits on instrumented hot paths and must
          emit through sinks; rendering belongs to the CLI
RPL008    per-element python loops over columnar arrays inside
          ``repro/core/batch`` — element-wise iteration materializes
          one numpy scalar per element and drags a vectorized kernel
          back to scalar speed; use fancy indexing or one ``.tolist()``
========  ============================================================

A finding on one line is silenced with a same-line comment::

    d = net.distance(u, v)  # repro-lint: disable=RPL001

A suppression applies to the whole statement its line belongs to (so a
directive on any line of a multi-line call, or on a decorator, works).
Suppressions that silence nothing are themselves reported (RPL000), so
stale ones cannot accumulate. The CLI entry point is
``python -m repro lint [paths…] [--format json|sarif]``; see
:mod:`repro.staticcheck.runner` for the library interface.

The **interprocedural** families RPL101–RPL105 (seed taint across call
boundaries, await-atomicity races, ledger conservation along CFG paths,
``DistanceBackend`` protocol conformance, worker frame-protocol
totality) live in
:mod:`repro.staticcheck.flow` behind the separate ``repro check`` verb —
they need the whole source tree at once, not one file at a time.
"""

from repro.staticcheck.diagnostics import Diagnostic, render_sarif
from repro.staticcheck.rules import ALL_CHECKERS, RULE_SUMMARIES
from repro.staticcheck.runner import lint_file, lint_paths, lint_source, run

__all__ = [
    "ALL_CHECKERS",
    "Diagnostic",
    "RULE_SUMMARIES",
    "lint_file",
    "lint_paths",
    "lint_source",
    "render_sarif",
    "run",
]
