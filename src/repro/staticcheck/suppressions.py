"""Same-line suppression comments for ``repro lint``.

Syntax (one or more rule ids, comma-separated)::

    d = net.distance(u, v)  # repro-lint: disable=RPL001
    x = random.Random()     # repro-lint: disable=RPL002,RPL003

A suppression silences findings of the listed rules **on its own line
only**. Suppressions that silence nothing are reported as RPL000 so
they cannot outlive the violation they were written for.
"""

from __future__ import annotations

import io
import re
import tokenize

from repro.staticcheck.diagnostics import Diagnostic

__all__ = ["UNUSED_SUPPRESSION_RULE", "SuppressionTable"]

#: rule id under which unused suppressions are reported
UNUSED_SUPPRESSION_RULE = "RPL000"

_DIRECTIVE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)")


def _iter_comments(source: str) -> list[tuple[int, str]]:
    """(line, text) of every real comment token — docstrings don't count."""
    out: list[tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.string))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - defensive
        pass  # the AST pass reports the syntax problem; no suppressions apply
    return out


class SuppressionTable:
    """Per-file map of line number → suppressed rule ids, with use tracking."""

    def __init__(self, source: str, path: str) -> None:
        self.path = path
        self._rules_by_line: dict[int, set[str]] = {}
        self._used: set[tuple[int, str]] = set()
        for lineno, text in _iter_comments(source):
            m = _DIRECTIVE.search(text)
            if m:
                rules = {r.strip() for r in m.group(1).split(",")}
                self._rules_by_line.setdefault(lineno, set()).update(rules)

    def is_suppressed(self, line: int, rule: str) -> bool:
        """Whether ``rule`` is silenced on ``line``; marks the directive used."""
        if rule in self._rules_by_line.get(line, ()):
            self._used.add((line, rule))
            return True
        return False

    def unused(self) -> list[Diagnostic]:
        """RPL000 findings for every directive entry that silenced nothing."""
        out = []
        for line, rules in self._rules_by_line.items():
            for rule in sorted(rules):
                if (line, rule) not in self._used:
                    out.append(
                        Diagnostic(
                            path=self.path,
                            line=line,
                            col=0,
                            rule=UNUSED_SUPPRESSION_RULE,
                            message=f"unused suppression of {rule}: nothing on this "
                                    "line triggers it — remove the directive",
                        )
                    )
        return out
