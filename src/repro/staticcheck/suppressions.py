"""Suppression comments for ``repro lint`` and ``repro check``.

Syntax (one or more rule ids, comma-separated)::

    d = net.distance(u, v)  # repro-lint: disable=RPL001
    x = random.Random()     # repro-lint: disable=RPL002,RPL003

A suppression silences findings of the listed rules on the **statement**
its line belongs to. For one-line statements that is the line itself;
for multi-line statements (a call spread over several lines, a decorated
``def``) the directive may sit on any line of the statement — including
a decorator line or the closing paren — and silences findings anywhere
in that statement's span. Compound statements (``if``/``for``/``def``…)
span their decorators through their header only, never their body, so a
directive on a ``def`` line cannot blanket-silence the whole function.

When no AST is available (syntax-error recovery paths) the table falls
back to exact-line matching.

Suppressions that silence nothing are reported as RPL000 so they cannot
outlive the violation they were written for. Because ``repro lint`` and
``repro check`` enforce disjoint rule sets over the same files, each
tool passes its own rule ids to :meth:`SuppressionTable.unused` —
otherwise every ``disable=RPL102`` would be "unused" to lint and every
``disable=RPL001`` "unused" to check.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Collection

from repro.staticcheck.diagnostics import Diagnostic

__all__ = ["UNUSED_SUPPRESSION_RULE", "SuppressionTable"]

#: rule id under which unused suppressions are reported
UNUSED_SUPPRESSION_RULE = "RPL000"

_DIRECTIVE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)")


def _iter_comments(source: str) -> list[tuple[int, str]]:
    """(line, text) of every real comment token — docstrings don't count."""
    out: list[tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.string))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover - defensive
        pass  # the AST pass reports the syntax problem; no suppressions apply
    return out


def _statement_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """Line span of every statement, headers only for compound statements.

    Simple statements span ``lineno``..``end_lineno``; statements with a
    suite (and decorators, for ``def``/``class``) span from their first
    decorator through the line before their body starts.
    """
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        for dec in getattr(node, "decorator_list", []):
            start = min(start, dec.lineno)
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            end = max(start, body[0].lineno - 1)
        else:
            end = node.end_lineno or node.lineno
        spans.append((start, end))
    return spans


def _enclosing_span(spans: list[tuple[int, int]], line: int) -> tuple[int, int]:
    """The smallest statement span containing ``line`` (or just the line)."""
    best: tuple[int, int] | None = None
    for lo, hi in spans:
        if lo <= line <= hi and (best is None or hi - lo < best[1] - best[0]):
            best = (lo, hi)
    return best if best is not None else (line, line)


class SuppressionTable:
    """Per-file map of directive → statement span, with use tracking."""

    def __init__(self, source: str, path: str, tree: ast.Module | None = None) -> None:
        self.path = path
        spans = _statement_spans(tree) if tree is not None else []
        #: (directive line, rule id) → (span lo, span hi)
        self._directives: dict[tuple[int, str], tuple[int, int]] = {}
        self._used: set[tuple[int, str]] = set()
        for lineno, text in _iter_comments(source):
            m = _DIRECTIVE.search(text)
            if m:
                span = _enclosing_span(spans, lineno)
                for rule in (r.strip() for r in m.group(1).split(",")):
                    self._directives[(lineno, rule)] = span

    def is_suppressed(self, line: int, rule: str) -> bool:
        """Whether ``rule`` is silenced on ``line``; marks the directive used."""
        hit = False
        for (dline, drule), (lo, hi) in self._directives.items():
            if drule == rule and lo <= line <= hi:
                self._used.add((dline, drule))
                hit = True
        return hit

    def unused(self, known_rules: Collection[str] | None = None) -> list[Diagnostic]:
        """RPL000 findings for every directive entry that silenced nothing.

        ``known_rules`` restricts reporting to the ids the calling tool
        actually enforces — directives for the *other* tool's rules are
        not its business to call unused.
        """
        out = []
        for (line, rule) in sorted(self._directives):
            if (line, rule) in self._used:
                continue
            if known_rules is not None and rule not in known_rules:
                continue
            out.append(
                Diagnostic(
                    path=self.path,
                    line=line,
                    col=0,
                    rule=UNUSED_SUPPRESSION_RULE,
                    message=f"unused suppression of {rule}: nothing in this "
                            "statement triggers it — remove the directive",
                )
            )
        return out
