"""Diagnostic records and output rendering for ``repro lint``/``check``."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Mapping, Sequence

__all__ = ["Diagnostic", "render_human", "render_json", "render_sarif"]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding, anchored to a file position.

    Ordering is (path, line, col, rule) so reports read top-to-bottom
    per file regardless of which checker produced each finding.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format_human(self) -> str:
        """``path:line:col: RPLxxx message`` — the clickable text form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, str | int]:
        """JSON-ready view (keys match the human rendering fields)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def render_human(diagnostics: Sequence[Diagnostic]) -> str:
    """Sorted one-line-per-finding report plus a summary line."""
    lines = [d.format_human() for d in sorted(diagnostics)]
    n = len(diagnostics)
    lines.append(f"found {n} problem{'' if n == 1 else 's'}" if n else "all checks passed")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    """The report as a JSON document (stable key order, sorted findings)."""
    return json.dumps(
        {
            "diagnostics": [d.as_dict() for d in sorted(diagnostics)],
            "count": len(diagnostics),
        },
        indent=1,
    )


def render_sarif(
    diagnostics: Sequence[Diagnostic],
    tool_name: str = "repro-lint",
    rule_summaries: Mapping[str, str] | None = None,
) -> str:
    """The report as a SARIF 2.1.0 document (GitHub code-scanning shape).

    Deterministic by construction: findings sorted by (path, line, col,
    rule), rule metadata sorted by id, fixed key order, one-space
    indent — two runs over the same tree are byte-identical.
    """
    ordered = sorted(diagnostics)
    summaries = dict(rule_summaries or {})
    rule_ids = sorted({d.rule for d in ordered} | set(summaries))
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}
    rules = [
        {
            "id": rid,
            "shortDescription": {"text": summaries.get(rid, rid)},
        }
        for rid in rule_ids
    ]
    results = [
        {
            "ruleId": d.rule,
            "ruleIndex": rule_index[d.rule],
            "level": "warning",
            "message": {"text": d.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": d.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(d.line, 1),
                            "startColumn": d.col + 1,
                        },
                    }
                }
            ],
        }
        for d in ordered
    ]
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=1)
