"""Diagnostic records and output rendering for ``repro lint``."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Diagnostic", "render_human", "render_json"]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding, anchored to a file position.

    Ordering is (path, line, col, rule) so reports read top-to-bottom
    per file regardless of which checker produced each finding.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format_human(self) -> str:
        """``path:line:col: RPLxxx message`` — the clickable text form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict[str, str | int]:
        """JSON-ready view (keys match the human rendering fields)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def render_human(diagnostics: Sequence[Diagnostic]) -> str:
    """Sorted one-line-per-finding report plus a summary line."""
    lines = [d.format_human() for d in sorted(diagnostics)]
    n = len(diagnostics)
    lines.append(f"found {n} problem{'' if n == 1 else 's'}" if n else "all checks passed")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    """The report as a JSON document (stable key order, sorted findings)."""
    return json.dumps(
        {
            "diagnostics": [d.as_dict() for d in sorted(diagnostics)],
            "count": len(diagnostics),
        },
        indent=1,
    )
