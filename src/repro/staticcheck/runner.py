"""File discovery, checker execution and the ``repro lint`` entry point."""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Sequence, TextIO

from repro.staticcheck.diagnostics import (
    Diagnostic,
    render_human,
    render_json,
    render_sarif,
)
from repro.staticcheck.rules import ALL_CHECKERS, RULE_SUMMARIES
from repro.staticcheck.suppressions import SuppressionTable

__all__ = ["lint_source", "lint_file", "lint_paths", "run"]

#: rule id for files the parser rejects (a syntax error is never clean)
PARSE_ERROR_RULE = "RPL999"

#: rule ids ``repro lint`` enforces — the bound for unused-suppression
#: reporting, so ``disable=RPL10x`` (a ``repro check`` rule) is not
#: miscalled unused by this tool
LINT_RULE_IDS: frozenset[str] = frozenset(c.rule_id for c in ALL_CHECKERS)


def lint_source(source: str, path: str = "<string>") -> list[Diagnostic]:
    """Lint one module given as text; the library-level workhorse.

    Applies every rule whose :meth:`~repro.staticcheck.rules.BaseChecker.
    applies_to` accepts ``path``, filters findings through the file's
    same-line suppressions, and appends an RPL000 finding per
    suppression that silenced nothing.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule=PARSE_ERROR_RULE,
                message=f"syntax error: {exc.msg}",
            )
        ]
    suppressions = SuppressionTable(source, path, tree=tree)
    kept: list[Diagnostic] = []
    for checker_cls in ALL_CHECKERS:
        if not checker_cls.applies_to(path):
            continue
        checker = checker_cls(path)
        checker.check_module(tree)
        for diag in checker.diagnostics:
            if not suppressions.is_suppressed(diag.line, diag.rule):
                kept.append(diag)
    kept.extend(suppressions.unused(known_rules=LINT_RULE_IDS))
    return kept


def lint_file(path: Path | str) -> list[Diagnostic]:
    """Lint one file on disk."""
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p))


def iter_python_files(paths: Sequence[Path | str]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            seen.update(p.rglob("*.py"))
        elif p.suffix == ".py":
            seen.add(p)
        else:
            raise FileNotFoundError(f"{p} is neither a directory nor a .py file")
    return sorted(seen)


def lint_paths(paths: Sequence[Path | str]) -> list[Diagnostic]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    out: list[Diagnostic] = []
    for p in iter_python_files(paths):
        out.extend(lint_file(p))
    return out


def run(
    paths: Sequence[Path | str],
    fmt: str = "text",
    stream: TextIO | None = None,
) -> int:
    """CLI driver: lint, print a report, return the exit code (0 = clean)."""
    if fmt not in ("text", "json", "sarif"):
        raise ValueError(f"unknown format {fmt!r}; choose 'text', 'json' or 'sarif'")
    stream = stream if stream is not None else sys.stdout
    diagnostics = lint_paths(paths)
    if fmt == "json":
        report = render_json(diagnostics)
    elif fmt == "sarif":
        report = render_sarif(
            diagnostics, tool_name="repro-lint", rule_summaries=RULE_SUMMARIES
        )
    else:
        report = render_human(diagnostics)
    print(report, file=stream)
    return 1 if diagnostics else 0
