"""The RPL rule checkers (see the package docstring for the catalogue).

Every checker is an :class:`ast.NodeVisitor` over one parsed module.
Checkers are lexical and deliberately conservative: they flag the
patterns the project has actually regressed on, not every theoretical
variant — a rule that cries wolf gets suppressed wholesale and protects
nothing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.diagnostics import Diagnostic

__all__ = ["ALL_CHECKERS", "RULE_SUMMARIES", "BaseChecker"]


def _dotted_name(node: ast.expr) -> tuple[str, ...]:
    """``a.b.c`` as ``("a", "b", "c")``; empty when not a plain name chain."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return tuple(reversed(parts))
    return ()


def _has_seed_argument(call: ast.Call) -> bool:
    """Whether a RNG constructor call passes any seed-like argument."""
    return bool(call.args) or bool(call.keywords)


class BaseChecker(ast.NodeVisitor):
    """Shared reporting plumbing for all RPL rules."""

    rule_id: str = ""
    summary: str = ""

    def __init__(self, path: str) -> None:
        self.path = path
        self.diagnostics: list[Diagnostic] = []

    @classmethod
    def applies_to(cls, path: str) -> bool:
        """Whether the rule runs on ``path`` at all (RPL005 exempts the oracle)."""
        return True

    def check_module(self, tree: ast.AST) -> None:
        """Run the rule over one parsed module (default: a single visit)."""
        self.visit(tree)

    def report(self, node: ast.AST, message: str) -> None:
        """Record one finding anchored at ``node``."""
        self.diagnostics.append(
            Diagnostic(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                rule=self.rule_id,
                message=message,
            )
        )


class PerPairDistanceChecker(BaseChecker):
    """RPL001 — per-pair ``*.distance(...)`` inside loops and reductions.

    One ``distance`` call per iteration is one Dijkstra row per
    iteration in lazy mode: the exact O(n · Dijkstra) pattern PR 1's
    batched oracle API exists to kill. Comprehensions and generator
    expressions (``sum(net.distance(u, v) for …)``) count as loops.
    """

    rule_id = "RPL001"
    summary = "per-pair distance() call in a loop; use the batched oracle API"

    _LOOPS = (ast.For, ast.AsyncFor, ast.While)
    _COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)

    def __init__(self, path: str) -> None:
        super().__init__(path)
        self._loop_depth = 0

    def visit(self, node: ast.AST) -> None:
        if isinstance(node, self._LOOPS + self._COMPREHENSIONS):
            self._loop_depth += 1
            self.generic_visit(node)
            self._loop_depth -= 1
        else:
            super().visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            self._loop_depth > 0
            and isinstance(func, ast.Attribute)
            and func.attr == "distance"
        ):
            self.report(
                node,
                "per-pair distance() call inside a loop/comprehension; batch it "
                "with distances_to_many / pairwise_submatrix / "
                "consecutive_distances / pair_distances",
            )
        self.generic_visit(node)


class UnseededRandomChecker(BaseChecker):
    """RPL002 — randomness that is not reproducible from an explicit seed.

    The paper's cost-ratio tables (§8) are only comparable across runs
    and machines when every workload is replayable; module-level RNG
    state and seedless generators silently break that.
    """

    rule_id = "RPL002"
    summary = "unseeded randomness; thread an explicit seed/rng parameter"

    #: stateful module-level functions of the stdlib ``random`` module
    _STDLIB_STATEFUL = frozenset(
        {
            "random", "randint", "randrange", "getrandbits", "randbytes",
            "choice", "choices", "shuffle", "sample", "uniform", "triangular",
            "betavariate", "expovariate", "gammavariate", "gauss",
            "lognormvariate", "normalvariate", "vonmisesvariate",
            "paretovariate", "weibullvariate", "binomialvariate", "seed",
        }
    )
    #: ``np.random`` attributes that are constructors, not the global RNG
    _NUMPY_CONSTRUCTORS = frozenset(
        {"default_rng", "RandomState", "Generator", "SeedSequence",
         "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64", "BitGenerator"}
    )
    #: constructors that must receive an explicit seed argument
    _NEEDS_SEED = frozenset({"default_rng", "RandomState", "Random"})
    #: project fault-injection entry points whose RNG must be explicitly
    #: seeded — FaultPlan defaults ``seed=0``, which is deterministic but
    #: silently shares one stream across every unlabelled plan; chaos
    #: results are only replayable/citable with the seed spelled out
    _PROJECT_SEEDED = frozenset({"FaultPlan"})

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted:
            self._check(node, dotted)
        self.generic_visit(node)

    @staticmethod
    def _passes_seed(call: ast.Call) -> bool:
        """Whether a project entry point pins its seed (kw or leading positional)."""
        return bool(call.args) or any(kw.arg == "seed" for kw in call.keywords)

    def _check(self, node: ast.Call, dotted: tuple[str, ...]) -> None:
        head, tail = dotted[0], dotted[-1]
        if tail in self._PROJECT_SEEDED:
            if not self._passes_seed(node):
                self.report(
                    node,
                    f"{tail}(...) without an explicit seed; pass seed=... so the "
                    "fault-injection run is replayable",
                )
            return
        if dotted[:-1] == ("random",):
            # stdlib: random.random() etc. share hidden global state;
            # random.Random() without a seed is just as irreproducible
            if tail in self._STDLIB_STATEFUL:
                self.report(
                    node,
                    f"random.{tail}() uses the global RNG; construct "
                    "random.Random(seed) and thread it through",
                )
            elif tail == "Random" and not _has_seed_argument(node):
                self.report(
                    node,
                    "random.Random() without a seed; pass an explicit seed",
                )
        elif len(dotted) == 3 and head in ("np", "numpy") and dotted[1] == "random":
            if tail in self._NEEDS_SEED:
                if not _has_seed_argument(node):
                    self.report(
                        node,
                        f"{head}.random.{tail}() without a seed; pass an "
                        "explicit seed",
                    )
            elif tail not in self._NUMPY_CONSTRUCTORS:
                self.report(
                    node,
                    f"{head}.random.{tail}() uses numpy's global RNG; use "
                    f"{head}.random.default_rng(seed) instead",
                )
        elif dotted == ("default_rng",) and not _has_seed_argument(node):
            self.report(node, "default_rng() without a seed; pass an explicit seed")
        elif dotted == ("Random",) and not _has_seed_argument(node):
            self.report(node, "Random() without a seed; pass an explicit seed")


class PrivateAccessChecker(BaseChecker):
    """RPL003 — private state touched through a foreign object.

    ``obj._rows`` / ``tracker._dl`` reached from another module welds
    callers to representation details the owner is free to change (the
    PR 1 LRU rework changed ``_rows``'s type, for instance). Access via
    ``self``/``cls``/``super()`` is the owner's business and always
    allowed, as is any private name the *current module* itself assigns
    on ``self`` somewhere (the module co-owns that state — e.g.
    ``CostLedger.merge`` reading ``other._maint_ratios``).
    """

    rule_id = "RPL003"
    summary = "cross-module access to private state; use a public accessor"

    #: namedtuple/dataclass protocol members that are private by spelling only
    _SHARED_PROTOCOL = frozenset(
        {"_replace", "_asdict", "_fields", "_make", "_field_defaults"}
    )

    def __init__(self, path: str) -> None:
        super().__init__(path)
        self._owned: set[str] = set()

    @staticmethod
    def _iter_owned_names(tree: ast.AST) -> Iterator[str]:
        """Private attribute names this module defines (and may touch freely)."""
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Store):
                if isinstance(node.value, ast.Name) and node.value.id in ("self", "cls"):
                    yield node.attr
            elif isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        yield stmt.target.id
                    elif isinstance(stmt, ast.Assign):
                        for tgt in stmt.targets:
                            if isinstance(tgt, ast.Name):
                                yield tgt.id
                                if tgt.id == "__slots__" and isinstance(
                                    stmt.value, (ast.Tuple, ast.List)
                                ):
                                    for elt in stmt.value.elts:
                                        if isinstance(elt, ast.Constant) and isinstance(
                                            elt.value, str
                                        ):
                                            yield elt.value

    def check_module(self, tree: ast.AST) -> None:
        """Two passes: collect owned names, then visit for foreign access."""
        self._owned = set(self._iter_owned_names(tree))
        self.visit(tree)

    @staticmethod
    def _receiver_is_owner(value: ast.expr) -> bool:
        if isinstance(value, ast.Name) and value.id in ("self", "cls"):
            return True
        # super()._x — the parent class's state is the subclass's state
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "super"
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = node.attr
        if (
            attr.startswith("_")
            and not (attr.startswith("__") and attr.endswith("__"))
            and attr not in self._SHARED_PROTOCOL
            and attr not in self._owned
            and not self._receiver_is_owner(node.value)
        ):
            self.report(
                node,
                f"access to private attribute {attr!r} on a foreign object; "
                "use a public accessor on the owning class",
            )
        self.generic_visit(node)


class FloatEqualityChecker(BaseChecker):
    """RPL004 — exact equality against float literals / distance results.

    Costs and distances are sums of floats; ``==`` on them is
    platform-dependent noise. :func:`repro.core.costs.close_to` is the
    sanctioned comparison.
    """

    rule_id = "RPL004"
    summary = "float equality on costs/distances; use repro.core.costs.close_to"

    #: oracle/cost methods whose results must never be compared exactly
    _DISTANCE_CALLS = frozenset(
        {
            "distance", "distance_upper_bound", "path_length", "dpath_length",
            "edge_cost", "path_cost", "total_edge_cost", "route_cost",
            "optimal_move_cost", "optimal_query_cost", "optimal_total_maintenance",
        }
    )

    @staticmethod
    def _is_float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        # -1.5 parses as UnaryOp(USub, Constant(1.5))
        return (
            isinstance(node, ast.UnaryOp)
            and isinstance(node.op, (ast.USub, ast.UAdd))
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, float)
        )

    def _is_distance_call(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self._DISTANCE_CALLS
        )

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for i, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (operands[i], operands[i + 1])
            if any(self._is_float_literal(x) for x in pair) or any(
                self._is_distance_call(x) for x in pair
            ):
                self.report(
                    node,
                    "exact ==/!= on a float/distance expression; use "
                    "repro.core.costs.close_to(a, b) instead",
                )
                break
        self.generic_visit(node)


class NetworkxDistanceChecker(BaseChecker):
    """RPL005 — networkx shortest-path machinery outside the oracle.

    ``repro/graphs/network.py`` is the single distance authority: it
    caches, batches, prunes and instruments every shortest-path solve.
    A stray ``nx.shortest_path_length`` elsewhere silently forks that
    authority and dodges both the LRU and the perf counters.
    """

    rule_id = "RPL005"
    summary = "networkx shortest-path call outside graphs/network.py"

    #: the file allowed to talk to networkx about distances
    _ORACLE_SUFFIX = "repro/graphs/network.py"

    _NX_DISTANCE_FUNCS = frozenset(
        {
            "shortest_path", "shortest_path_length", "has_path",
            "single_source_shortest_path", "single_source_shortest_path_length",
            "single_source_dijkstra", "single_source_dijkstra_path",
            "single_source_dijkstra_path_length", "multi_source_dijkstra",
            "dijkstra_path", "dijkstra_path_length", "dijkstra_predecessor_and_distance",
            "bellman_ford_path", "bellman_ford_path_length",
            "all_pairs_shortest_path", "all_pairs_shortest_path_length",
            "all_pairs_dijkstra", "all_pairs_dijkstra_path",
            "all_pairs_dijkstra_path_length", "all_pairs_bellman_ford_path",
            "all_pairs_bellman_ford_path_length", "floyd_warshall",
            "floyd_warshall_numpy", "floyd_warshall_predecessor_and_distance",
            "johnson", "astar_path", "astar_path_length",
            "eccentricity", "diameter", "radius", "center", "periphery",
        }
    )

    @classmethod
    def applies_to(cls, path: str) -> bool:
        return not path.replace("\\", "/").endswith(cls._ORACLE_SUFFIX)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if (
            len(dotted) >= 2
            and dotted[0] in ("nx", "networkx")
            and dotted[-1] in self._NX_DISTANCE_FUNCS
        ):
            self.report(
                node,
                f"networkx {dotted[-1]}() bypasses the SensorNetwork distance "
                "oracle; route distance queries through repro.graphs.network",
            )
        self.generic_visit(node)


class AsyncBlockingChecker(BaseChecker):
    """RPL006 — blocking calls lexically inside ``async def`` bodies.

    The service layer (``repro/serve``) runs one cooperative event
    loop; a single blocking call in a coroutine stalls *every* shard
    worker and the load generator at once. Three families regress
    easily and are flagged when called directly from a coroutine:
    ``time.sleep`` (use ``asyncio.sleep``), synchronous distance-oracle
    solves (``distance`` / ``distances_to_many`` / … — hoist them into
    a sync helper the worker calls, so the batch boundary is explicit),
    and file I/O (``open``, ``Path.read_text`` / ``write_text`` — do it
    outside the loop). Nested ``def`` bodies are exempt: a sync helper
    *defined* inside a coroutine is called on somebody's explicit
    budget, which is exactly the sanctioned structure.

    Scoped to ``repro/serve`` files: the simulators are synchronous by
    design and the rule would be noise there.
    """

    rule_id = "RPL006"
    summary = "blocking call inside async def under repro/serve"

    #: synchronous oracle entry points (each may run a Dijkstra solve)
    _ORACLE_SOLVES = frozenset(
        {
            "distance", "distances_from", "distances_to_many",
            "pairwise_submatrix", "pair_distances", "consecutive_distances",
            "path_length", "diameter", "diameter_bounds", "build_landmarks",
        }
    )
    #: blocking file-I/O attribute calls (pathlib and raw file objects)
    _FILE_IO = frozenset(
        {"read_text", "write_text", "read_bytes", "write_bytes"}
    )

    def __init__(self, path: str) -> None:
        super().__init__(path)
        self._async_depth = 0

    @classmethod
    def applies_to(cls, path: str) -> bool:
        return "repro/serve" in path.replace("\\", "/")

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._async_depth += 1
        self.generic_visit(node)
        self._async_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # a nested sync def is its caller's business, not the coroutine's
        saved = self._async_depth
        self._async_depth = 0
        self.generic_visit(node)
        self._async_depth = saved

    def visit_Call(self, node: ast.Call) -> None:
        if self._async_depth > 0:
            dotted = _dotted_name(node.func)
            if dotted == ("time", "sleep"):
                self.report(
                    node,
                    "time.sleep() blocks the event loop; await "
                    "asyncio.sleep() instead",
                )
            elif dotted == ("open",):
                self.report(
                    node,
                    "open() blocks the event loop; do file I/O outside "
                    "async code",
                )
            elif isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                if attr in self._ORACLE_SOLVES:
                    self.report(
                        node,
                        f"synchronous oracle solve {attr}() inside async "
                        "def; hoist it into a sync batch helper the worker "
                        "calls explicitly",
                    )
                elif attr in self._FILE_IO:
                    self.report(
                        node,
                        f"{attr}() blocks the event loop; do file I/O "
                        "outside async code",
                    )
        self.generic_visit(node)


class ObsOutputChecker(BaseChecker):
    """RPL007 — direct output from the observability layer.

    ``repro/obs`` sits inside the hot paths of every instrumented
    operation: spans close in the middle of moves, queries and shard
    batches. A stray ``print`` (or an ad-hoc ``logging`` call, or a
    direct ``sys.stdout``/``sys.stderr`` write) there is an I/O stall
    charged to whatever operation happened to be in flight — the exact
    overhead the NULL_SPAN design exists to avoid — and it corrupts the
    machine-readable output of CLI commands that print JSON reports.
    Everything in ``repro/obs`` must emit through tracer sinks or
    return data; rendering is the CLI's job.

    Scoped to ``repro/obs`` files.
    """

    rule_id = "RPL007"
    summary = "direct print/logging in repro/obs; emit through sinks instead"

    #: output attribute calls on the logging module / a logger object
    _LOG_METHODS = frozenset(
        {"debug", "info", "warning", "warn", "error", "exception", "critical", "log"}
    )

    @classmethod
    def applies_to(cls, path: str) -> bool:
        return "repro/obs" in path.replace("\\", "/")

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "logging" or alias.name.startswith("logging."):
                self.report(
                    node,
                    "the obs layer does not log; emit SpanEvents through "
                    "tracer sinks and let callers render them",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.module.split(".")[0] == "logging":
            self.report(
                node,
                "the obs layer does not log; emit SpanEvents through "
                "tracer sinks and let callers render them",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted == ("print",):
            self.report(
                node,
                "print() in the obs layer stalls the instrumented hot path "
                "and corrupts JSON-emitting CLI commands; return data or "
                "emit through a sink",
            )
        elif dotted[:2] in (("sys", "stdout"), ("sys", "stderr")):
            self.report(
                node,
                "direct sys.stdout/sys.stderr output in the obs layer; "
                "rendering belongs to the CLI",
            )
        elif (
            len(dotted) == 2
            and dotted[1] in self._LOG_METHODS
            and dotted[0] in ("logging", "logger", "log")
        ):
            self.report(
                node,
                "ad-hoc logging in the obs layer; emit SpanEvents through "
                "tracer sinks instead",
            )
        self.generic_visit(node)


class ColumnarLoopChecker(BaseChecker):
    """RPL008 — per-element python loops over columnar arrays.

    ``repro/core/batch`` is the struct-of-arrays kernel layer: its whole
    reason to exist is that state lives in numpy columns and every op
    touches them with vectorized kernels. Iterating one of those columns
    from python — ``for e in self._epoch``, ``zip(rows, self._spine[rows])``,
    ``for i in np.flatnonzero(mask)`` — materializes one numpy *scalar*
    per element, each ~100x a plain-int access, and quietly drags a
    kernel back to scalar speed while every test still passes. The
    sanctioned idioms are numpy fancy indexing for bulk work and a
    single ``.tolist()`` conversion when python-object iteration is
    genuinely needed (outcome assembly does exactly that).

    Scoped to ``repro/core/batch``: elsewhere a small python loop over
    an array is usually fine and the rule would be noise.
    """

    rule_id = "RPL008"
    summary = "per-element python loop over a columnar array in repro/core/batch"

    #: the engine's per-object state columns and the static hierarchy tables
    _COLUMNS = frozenset(
        {
            "_spine", "_spine_hop", "_epoch", "_published",
            "chain", "chain_hop", "cum_q", "up_cum", "pub_cost",
            "lift", "sdl_cost",
        }
    )
    #: iteration wrappers whose arguments are what is really iterated
    _WRAPPERS = frozenset({"zip", "enumerate", "reversed", "sorted", "iter"})

    @classmethod
    def applies_to(cls, path: str) -> bool:
        return "repro/core/batch" in path.replace("\\", "/")

    def _columnar(self, node: ast.expr) -> ast.expr | None:
        """The columnar-attribute expression behind ``node``, if any."""
        while isinstance(node, ast.Subscript):
            node = node.value
        dotted = _dotted_name(node)
        if dotted and dotted[-1] in self._COLUMNS:
            return node
        return None

    def _check_iterable(self, node: ast.expr) -> None:
        if isinstance(node, ast.Call):
            dotted = _dotted_name(node.func)
            if dotted and dotted[-1] in self._WRAPPERS:
                for arg in node.args:
                    self._check_iterable(arg)
                return
            if len(dotted) >= 2 and dotted[0] in ("np", "numpy"):
                self.report(
                    node,
                    f"iterating {'.'.join(dotted)}(...) element-wise yields "
                    "one numpy scalar per element; keep it an array "
                    "(vectorize) or convert once with .tolist()",
                )
                return
        target = self._columnar(node)
        if target is not None:
            self.report(
                node,
                "per-element python loop over a columnar array; use numpy "
                "fancy indexing for bulk work or convert once with .tolist()",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node: ast.AST) -> None:
        for gen in node.generators:
            self._check_iterable(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp


#: every rule, in id order — the runner instantiates one of each per file
ALL_CHECKERS: tuple[type[BaseChecker], ...] = (
    PerPairDistanceChecker,
    UnseededRandomChecker,
    PrivateAccessChecker,
    FloatEqualityChecker,
    NetworkxDistanceChecker,
    AsyncBlockingChecker,
    ObsOutputChecker,
    ColumnarLoopChecker,
)

#: rule id → one-line summary (docs page and ``--format json`` metadata)
RULE_SUMMARIES: dict[str, str] = {c.rule_id: c.summary for c in ALL_CHECKERS}
