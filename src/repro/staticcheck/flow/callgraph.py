"""Call-graph construction over the :class:`ProjectIndex`.

Resolution is deliberately conservative: an edge exists only when the
callee resolves to a function *in the index* — plain names, imported
names (including aliases), ``module.func`` attribute chains,
``self.method(...)`` / ``cls.method(...)`` within a class (searched
through the indexed MRO), and ``ClassName(...)`` constructor calls
(edges to ``Class.__init__`` when defined). Unresolvable calls (stdlib,
dynamic dispatch on arbitrary objects) simply contribute no edge, so
the graph under-approximates — the right bias for "is this reachable"
style rules that must not hallucinate paths.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.staticcheck.flow.modules import FunctionInfo, ProjectIndex, dotted_name

__all__ = ["CallGraph", "build_call_graph"]


@dataclass
class CallGraph:
    """caller qualname → sorted callee qualnames, with per-edge call sites."""

    edges: dict[str, list[str]] = field(default_factory=dict)
    #: (caller, callee) → the actual ``ast.Call`` nodes of that edge
    sites: dict[tuple[str, str], list[ast.Call]] = field(default_factory=dict)

    def add(self, caller: str, callee: str, call: ast.Call) -> None:
        callees = self.edges.setdefault(caller, [])
        if callee not in callees:
            callees.append(callee)
            callees.sort()
        self.sites.setdefault((caller, callee), []).append(call)

    def callers_of(self, callee: str) -> list[str]:
        """Sorted qualnames with an edge into ``callee``."""
        return sorted(c for c, outs in self.edges.items() if callee in outs)

    def reachable_from(self, roots: list[str]) -> set[str]:
        """Every qualname reachable from ``roots`` (roots included)."""
        seen: set[str] = set()
        stack = sorted(roots)
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(self.edges.get(cur, []))
        return seen

    def reaching(self, targets: set[str]) -> set[str]:
        """Every qualname from which some member of ``targets`` is reachable."""
        reverse: dict[str, list[str]] = {}
        for caller, outs in self.edges.items():
            for callee in outs:
                reverse.setdefault(callee, []).append(caller)
        seen: set[str] = set()
        stack = sorted(targets)
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            stack.extend(reverse.get(cur, []))
        return seen


def resolve_call(
    index: ProjectIndex, fn: FunctionInfo, call: ast.Call
) -> str | None:
    """Qualname of the function ``call`` invokes, if statically known."""
    dotted = dotted_name(call.func)
    if not dotted:
        return None
    head, _, rest = dotted.partition(".")
    if head in ("self", "cls") and fn.cls is not None and rest and "." not in rest:
        cls = index.classes.get(f"{fn.module}.{fn.cls}")
        if cls is not None:
            for ci in index.method_resolution_order(cls):
                if rest in ci.methods:
                    return ci.methods[rest].qualname
        return None
    resolved = index.resolve(fn.module, dotted)
    if resolved is None:
        return None
    if resolved in index.classes:
        init = f"{resolved}.__init__"
        return init if init in index.functions else resolved
    if resolved in index.functions:
        return resolved
    return None


def build_call_graph(index: ProjectIndex) -> CallGraph:
    """Resolve every call site of every indexed function into edges."""
    graph = CallGraph()
    for qualname in sorted(index.functions):
        fn = index.functions[qualname]
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                callee = resolve_call(index, fn, node)
                if callee is not None and callee != qualname:
                    graph.add(qualname, callee, node)
    return graph
