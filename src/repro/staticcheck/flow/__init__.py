"""``repro.staticcheck.flow`` — the project-wide interprocedural engine.

Where :mod:`repro.staticcheck.rules` looks at one line of one file at a
time, this package sees the whole source tree at once:

- :mod:`~repro.staticcheck.flow.modules` parses every file into a
  :class:`ProjectIndex` — module symbol tables (functions by qualified
  name, classes with their base lists and dataclass fields, import
  alias maps);
- :mod:`~repro.staticcheck.flow.callgraph` resolves call sites against
  the index into a :class:`CallGraph` over ``repro.*`` functions;
- :mod:`~repro.staticcheck.flow.cfg` builds a per-function control-flow
  graph **with exception edges** and runs forward worklist dataflow
  over it;
- :mod:`~repro.staticcheck.flow.flowrules` implements the
  interprocedural rule families RPL101–RPL105 on top of all three;
- :mod:`~repro.staticcheck.flow.engine` is the ``repro check`` driver:
  index → call graph → rules → suppression filtering → report, with an
  optional on-disk cache of the parsed index keyed on a source hash.

The rule catalogue (see ``docs/LINT.md`` § Deep analysis):

========  ==============================================================
RPL101    seed-taint: an RNG may be constructed from a ``None`` seed
          reachable through call boundaries / dataclass fields
RPL102    await-atomicity: ``self.*`` state read before an ``await``
          and written after it without a re-read (asyncio race)
RPL103    ledger conservation: a distance-oracle cost must flow into
          exactly one ledger/perf sink on every CFG path
RPL104    protocol conformance: classes registered via
          ``register_backend`` must implement ``DistanceBackend``
RPL105    worker protocol totality: the ``repro.serve.worker`` handler
          table must mirror the transport's frame-kind tables
========  ==============================================================
"""

from __future__ import annotations

from repro.staticcheck.flow.callgraph import CallGraph, build_call_graph
from repro.staticcheck.flow.cfg import CFG, build_cfg, forward_dataflow
from repro.staticcheck.flow.engine import FLOW_RULE_IDS, check_paths, check_sources, run_check
from repro.staticcheck.flow.flowrules import FLOW_CHECKERS, FLOW_RULE_SUMMARIES
from repro.staticcheck.flow.modules import FunctionInfo, ModuleInfo, ProjectIndex

__all__ = [
    "CFG",
    "CallGraph",
    "FLOW_CHECKERS",
    "FLOW_RULE_IDS",
    "FLOW_RULE_SUMMARIES",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "build_call_graph",
    "build_cfg",
    "check_paths",
    "check_sources",
    "forward_dataflow",
    "run_check",
]
