"""Project parsing and symbol tables — the :class:`ProjectIndex`.

The index is the shared substrate of every flow rule: one parse of
every file, module names derived from paths, and per-module symbol
tables (functions by qualified name, classes with resolved base names
and dataclass fields, import alias maps). Everything downstream — the
call graph, the CFGs, the rules — reads from here and never re-parses.

All containers iterate in sorted/insertion-deterministic order so the
``repro check`` report is byte-identical across runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProjectIndex",
    "dotted_name",
    "module_name_for",
]

#: sentinel for "parameter has no default"
_NO_DEFAULT = object()


def module_name_for(path: str) -> str:
    """Dotted module name for a file path.

    ``src/repro/serve/shard.py`` → ``repro.serve.shard``; the part
    after the last ``src/`` component wins, falling back to the last
    ``repro/`` component, falling back to the whole relative path.
    ``__init__.py`` names the package itself.
    """
    norm = path.replace("\\", "/").lstrip("./")
    parts = norm.split("/")
    if "src" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("src"):][1:]
    elif "repro" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("repro"):]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


@dataclass
class FunctionInfo:
    """One function or method, with the signature facts rules need."""

    qualname: str  #: e.g. ``repro.serve.shard.TrackerShard.stop``
    module: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None = None  #: enclosing class name, if a method

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)

    @property
    def params(self) -> list[str]:
        """Positional + keyword-only parameter names, in order."""
        a = self.node.args
        return [p.arg for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)]

    def default_of(self, param: str):
        """The default expression of ``param`` (``_NO_DEFAULT`` if none)."""
        a = self.node.args
        positional = [*a.posonlyargs, *a.args]
        n_defaults = len(a.defaults)
        for i, p in enumerate(positional):
            if p.arg == param:
                j = i - (len(positional) - n_defaults)
                return a.defaults[j] if j >= 0 else _NO_DEFAULT
        for p, d in zip(a.kwonlyargs, a.kw_defaults):
            if p.arg == param:
                return d if d is not None else _NO_DEFAULT
        return _NO_DEFAULT

    def has_none_default(self, param: str) -> bool:
        """Whether ``param`` defaults to the literal ``None``."""
        d = self.default_of(param)
        return isinstance(d, ast.Constant) and d.value is None

    def bind_argument(self, call: ast.Call, param: str) -> ast.expr | None | object:
        """The expression ``call`` passes for ``param``.

        Returns the expression, ``_NO_DEFAULT`` when the call omits it
        (the callee's default applies), or ``None`` when binding cannot
        be decided statically (``*args`` / ``**kwargs`` forwarding).
        """
        if any(isinstance(a, ast.Starred) for a in call.args) or any(
            kw.arg is None for kw in call.keywords
        ):
            return None
        for kw in call.keywords:
            if kw.arg == param:
                return kw.value
        params = self.params
        offset = 1 if self.cls is not None and params and params[0] in ("self", "cls") else 0
        try:
            pos = params.index(param) - offset
        except ValueError:
            return None
        if 0 <= pos < len(call.args):
            return call.args[pos]
        return _NO_DEFAULT


@dataclass
class ClassInfo:
    """One class: bases (as written), methods, and dataclass fields."""

    qualname: str
    module: str
    path: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)  #: dotted base names as written
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    is_dataclass: bool = False
    #: annotated (dataclass-order) field name → default expr (None if none)
    fields: dict[str, ast.expr | None] = field(default_factory=dict)
    #: plain class-level assignments (``name = "full"`` style attributes)
    class_attrs: dict[str, ast.expr] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ModuleInfo:
    """One parsed module and its local symbol tables."""

    path: str
    name: str
    tree: ast.Module
    source: str
    #: local alias → dotted target (``np`` → ``numpy``,
    #: ``MOTTracker`` → ``repro.core.mot.MOTTracker``)
    imports: dict[str, str] = field(default_factory=dict)
    #: local qualname (``f`` / ``Cls.m``) → FunctionInfo
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)


def dotted_name(node: ast.expr) -> str:
    """``a.b.c`` rendered as a string; ``""`` when not a name chain."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return ""


def _is_dataclass_decorator(dec: ast.expr) -> bool:
    target = dec.func if isinstance(dec, ast.Call) else dec
    return dotted_name(target) in ("dataclass", "dataclasses.dataclass")


class ProjectIndex:
    """Symbol tables over a whole source tree (see module docstring)."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: files the parser rejected: (path, line, col, message)
        self.parse_errors: list[tuple[str, int, int, str]] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_sources(cls, sources: Iterable[tuple[str, str]]) -> "ProjectIndex":
        """Build an index from ``(path, source)`` pairs (sorted by path)."""
        index = cls()
        index.add_sources(sources)
        return index

    def add_sources(self, sources: Iterable[tuple[str, str]]) -> None:
        """Parse and index ``(path, source)`` pairs (sorted by path)."""
        for path, source in sorted(sources):
            self._add_module(path, source)

    @classmethod
    def from_paths(cls, paths: Sequence[Path | str]) -> "ProjectIndex":
        """Build an index from files/directories on disk."""
        from repro.staticcheck.runner import iter_python_files

        files = iter_python_files(paths)
        return cls.from_sources(
            (str(p), p.read_text(encoding="utf-8")) for p in files
        )

    def _add_module(self, path: str, source: str) -> None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.parse_errors.append(
                (path, exc.lineno or 0, exc.offset or 0, f"syntax error: {exc.msg}")
            )
            return
        name = module_name_for(path)
        mod = ModuleInfo(path=path, name=name, tree=tree, source=source)
        self._collect_imports(mod)
        self._collect_symbols(mod)
        self.modules[name] = mod
        for local, fn in mod.functions.items():
            self.functions[f"{name}.{local}"] = fn
        for cname, ci in mod.classes.items():
            self.classes[f"{name}.{cname}"] = ci

    def _collect_imports(self, mod: ModuleInfo) -> None:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        mod.imports[alias.asname] = alias.name
                    else:
                        mod.imports[alias.name.split(".")[0]] = alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:  # relative: resolve against this module's package
                    pkg_parts = mod.name.split(".")[: -node.level]
                    base = ".".join(pkg_parts + ([node.module] if node.module else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    mod.imports[alias.asname or alias.name] = f"{base}.{alias.name}"

    def _collect_symbols(self, mod: ModuleInfo) -> None:
        for node in mod.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fi = FunctionInfo(
                    qualname=f"{mod.name}.{node.name}",
                    module=mod.name, path=mod.path, node=node,
                )
                mod.functions[node.name] = fi
            elif isinstance(node, ast.ClassDef):
                ci = ClassInfo(
                    qualname=f"{mod.name}.{node.name}",
                    module=mod.name, path=mod.path, node=node,
                    bases=[b for b in (dotted_name(base) for base in node.bases) if b],
                    is_dataclass=any(
                        _is_dataclass_decorator(d) for d in node.decorator_list
                    ),
                )
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fi = FunctionInfo(
                            qualname=f"{ci.qualname}.{stmt.name}",
                            module=mod.name, path=mod.path, node=stmt,
                            cls=node.name,
                        )
                        ci.methods[stmt.name] = fi
                        mod.functions[f"{node.name}.{stmt.name}"] = fi
                    elif isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        ci.fields[stmt.target.id] = stmt.value
                    elif isinstance(stmt, ast.Assign):
                        for tgt in stmt.targets:
                            if isinstance(tgt, ast.Name):
                                ci.class_attrs[tgt.id] = stmt.value
                mod.classes[node.name] = ci

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def resolve(self, module: str, dotted: str) -> str | None:
        """Resolve a name as used inside ``module`` to a global qualname.

        Handles module-local functions/classes, imported names
        (``from m import f`` / ``import m as alias`` + ``alias.f``) and
        dotted attribute chains onto either. Returns ``None`` when the
        name does not land on an indexed symbol.
        """
        mod = self.modules.get(module)
        if mod is None or not dotted:
            return None
        head, _, rest = dotted.partition(".")
        candidates = []
        if head in mod.functions or head in mod.classes:
            candidates.append(f"{module}.{dotted}")
        if head in mod.imports:
            target = mod.imports[head]
            candidates.append(f"{target}.{rest}" if rest else target)
        candidates.append(dotted)  # already fully qualified
        for cand in candidates:
            if cand in self.functions or cand in self.classes:
                return cand
            # a class constructor call: Cls → Cls.__init__ stays a class ref
            if rest and cand.rsplit(".", 1)[0] in self.classes:
                return cand if cand in self.functions else None
        return None

    def resolve_class(self, module: str, dotted: str) -> ClassInfo | None:
        """Like :meth:`resolve` but only returns class targets."""
        qn = self.resolve(module, dotted)
        return self.classes.get(qn) if qn else None

    def method_resolution_order(self, cls: ClassInfo) -> list[ClassInfo]:
        """``cls`` plus its indexed base classes, depth-first, no repeats."""
        out: list[ClassInfo] = []
        seen: set[str] = set()

        def visit(ci: ClassInfo) -> None:
            if ci.qualname in seen:
                return
            seen.add(ci.qualname)
            out.append(ci)
            for base in ci.bases:
                bi = self.resolve_class(ci.module, base)
                if bi is not None:
                    visit(bi)

        visit(cls)
        return out
