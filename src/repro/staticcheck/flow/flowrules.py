"""The interprocedural rule families RPL101–RPL105.

Each checker consumes the whole :class:`ProjectIndex` (and the call
graph) instead of one file, so findings can name facts a per-line rule
cannot see: which call site leaves a seed ``None``, which ``await``
makes a read stale, which CFG path lets a cost escape its ledger.
Like the lexical rules, every family is deliberately conservative —
an edge or a path only exists when resolution is statically certain,
so each finding is actionable rather than statistical.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.staticcheck.diagnostics import Diagnostic
from repro.staticcheck.flow.callgraph import CallGraph
from repro.staticcheck.flow.cfg import EXIT, RAISE, build_cfg, forward_dataflow
from repro.staticcheck.flow.modules import (
    _NO_DEFAULT,
    ClassInfo,
    FunctionInfo,
    ProjectIndex,
    dotted_name,
)

__all__ = ["FLOW_CHECKERS", "FLOW_RULE_SUMMARIES", "FlowChecker"]


def _own_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions a statement itself evaluates (bodies excluded).

    Compound statements (``if``/``while``/``for``/``with``/``try``) own
    only their header expressions — their suites are separate CFG nodes.
    """
    if isinstance(stmt, (ast.Assign, ast.Return, ast.Expr)):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.AnnAssign):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.AugAssign):
        return [stmt.value]
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Raise):
        return [e for e in (stmt.exc, stmt.cause) if e is not None]
    if isinstance(stmt, ast.Assert):
        return [stmt.test] + ([stmt.msg] if stmt.msg is not None else [])
    if isinstance(stmt, ast.Delete):
        return list(stmt.targets)
    return []


def _walk_exprs(exprs: Iterable[ast.expr]) -> Iterable[ast.AST]:
    for e in exprs:
        yield from ast.walk(e)


class FlowChecker:
    """Shared reporting plumbing for the interprocedural rules."""

    rule_id: str = ""
    summary: str = ""

    def __init__(self) -> None:
        self.diagnostics: list[Diagnostic] = []

    def report(self, path: str, node: ast.AST, message: str) -> None:
        diag = Diagnostic(
            path=path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            rule=self.rule_id,
            message=message,
        )
        if diag not in self.diagnostics:
            self.diagnostics.append(diag)

    def check_project(self, index: ProjectIndex, graph: CallGraph) -> None:
        raise NotImplementedError


# ======================================================================
# RPL101 — seed taint
# ======================================================================
class SeedTaintChecker(FlowChecker):
    """RPL101 — an RNG may be constructed from a ``None`` seed.

    The interprocedural generalization of RPL002: RPL002 sees
    ``random.Random()`` with no argument, but ``random.Random(None)``,
    a ``seed: int | None = None`` parameter threaded through helpers,
    or a dataclass field defaulting to ``None`` all construct the same
    irreproducible generator. This rule tracks the seed *value*: an RNG
    constructor whose seed expression is the literal ``None`` is flagged
    directly; one fed from a parameter marks that ``(function, param)``
    as seed-carrying, and every resolved call site that omits the
    parameter (with a ``None`` default) or passes ``None`` — possibly
    through further parameters, to a fixed point — is flagged where the
    seed was actually dropped. Findings inside code reachable from a
    sim/serve/experiments entry point say so.
    """

    rule_id = "RPL101"
    summary = "RNG reachable from a None seed across call boundaries"

    _RNG_TAILS = frozenset({"Random", "default_rng", "RandomState"})

    # -- RNG construction sites ----------------------------------------
    def _is_rng_call(self, call: ast.Call) -> bool:
        dotted = dotted_name(call.func)
        if not dotted:
            return False
        parts = dotted.split(".")
        if parts[-1] not in self._RNG_TAILS:
            return False
        if len(parts) == 1:
            return True
        return parts[0] in ("random", "np", "numpy")

    @staticmethod
    def _seed_expr(call: ast.Call) -> ast.expr | None:
        for kw in call.keywords:
            if kw.arg == "seed":
                return kw.value
        if call.args and not isinstance(call.args[0], ast.Starred):
            return call.args[0]
        return None

    @staticmethod
    def _param_aliases(fn: FunctionInfo) -> dict[str, str]:
        """local name → parameter it copies (``rng_seed = seed`` chains)."""
        params = set(fn.params)
        aliases = {p: p for p in params}
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                tgt, val = node.targets[0], node.value
                if isinstance(tgt, ast.Name):
                    if isinstance(val, ast.Name) and val.id in aliases:
                        aliases[tgt.id] = aliases[val.id]
                    elif tgt.id in aliases and tgt.id not in params:
                        del aliases[tgt.id]
        return aliases

    # -- main ----------------------------------------------------------
    def check_project(self, index: ProjectIndex, graph: CallGraph) -> None:
        #: (qualname, param) → description of the RNG it feeds
        seed_params: dict[tuple[str, str], str] = {}
        #: (class qualname, field) → description
        seed_fields: dict[tuple[str, str], str] = {}

        for qualname in sorted(index.functions):
            fn = index.functions[qualname]
            aliases = self._param_aliases(fn)
            for node in ast.walk(fn.node):
                if not (isinstance(node, ast.Call) and self._is_rng_call(node)):
                    continue
                rng = dotted_name(node.func)
                seed = self._seed_expr(node)
                if isinstance(seed, ast.Constant) and seed.value is None:
                    self.report(
                        fn.path, node,
                        f"{rng}(None) constructs an unseeded RNG (seed is the "
                        "literal None); pass a real seed",
                    )
                elif isinstance(seed, ast.Name) and seed.id in aliases:
                    seed_params[(qualname, aliases[seed.id])] = rng
                elif (
                    isinstance(seed, ast.Attribute)
                    and isinstance(seed.value, ast.Name)
                    and seed.value.id == "self"
                    and fn.cls is not None
                ):
                    cls = index.classes.get(f"{fn.module}.{fn.cls}")
                    if cls is not None and seed.attr in cls.fields:
                        seed_fields[(cls.qualname, seed.attr)] = rng

        entry_reach = self._entry_reachability(index, graph)
        self._propagate_params(index, graph, seed_params, entry_reach)
        self._propagate_fields(index, graph, seed_fields, entry_reach)

    def _entry_reachability(
        self, index: ProjectIndex, graph: CallGraph
    ) -> list[tuple[str, set[str]]]:
        """Sorted (entry qualname, reachable set) for sim/serve/experiments."""
        entries = sorted(
            q
            for q, fn in index.functions.items()
            if fn.cls is None
            and not fn.name.startswith("_")
            and fn.module.startswith(("repro.sim", "repro.serve", "repro.experiments"))
        )
        return [(e, graph.reachable_from([e])) for e in entries]

    def _entry_note(
        self, caller: str, entry_reach: list[tuple[str, set[str]]]
    ) -> str:
        for entry, reach in entry_reach:
            if caller in reach and caller != entry:
                return f" (reachable from entry point {entry})"
            if caller == entry:
                return " (a sim/serve/experiments entry point)"
        return ""

    def _propagate_params(
        self,
        index: ProjectIndex,
        graph: CallGraph,
        seed_params: dict[tuple[str, str], str],
        entry_reach: list[tuple[str, set[str]]],
    ) -> None:
        worklist = sorted(seed_params)
        while worklist:
            callee_q, param = worklist.pop(0)
            rng = seed_params[(callee_q, param)]
            callee = index.functions[callee_q]
            for caller_q in graph.callers_of(callee_q):
                caller = index.functions[caller_q]
                aliases = self._param_aliases(caller)
                for call in graph.sites.get((caller_q, callee_q), []):
                    arg = callee.bind_argument(call, param)
                    note = self._entry_note(caller_q, entry_reach)
                    if arg is None:
                        continue
                    if arg is _NO_DEFAULT:
                        if callee.has_none_default(param):
                            self.report(
                                caller.path, call,
                                f"call omits {param!r}, whose default is None: "
                                f"{callee_q} constructs {rng}() from it — pass "
                                f"an explicit seed{note}",
                            )
                    elif isinstance(arg, ast.Constant) and arg.value is None:
                        self.report(
                            caller.path, call,
                            f"passes {param}=None to {callee_q}, which "
                            f"constructs {rng}() from it — pass a real "
                            f"seed{note}",
                        )
                    elif isinstance(arg, ast.Name) and arg.id in aliases:
                        key = (caller_q, aliases[arg.id])
                        if key not in seed_params:
                            seed_params[key] = rng
                            worklist.append(key)

    def _propagate_fields(
        self,
        index: ProjectIndex,
        graph: CallGraph,
        seed_fields: dict[tuple[str, str], str],
        entry_reach: list[tuple[str, set[str]]],
    ) -> None:
        for (cls_q, fname) in sorted(seed_fields):
            rng = seed_fields[(cls_q, fname)]
            cls = index.classes[cls_q]
            # the constructor edge lands on the class itself (dataclasses
            # have no explicit __init__) or on Class.__init__
            for target in (cls_q, f"{cls_q}.__init__"):
                for caller_q in graph.callers_of(target):
                    caller = index.functions[caller_q]
                    aliases = self._param_aliases(caller)
                    for call in graph.sites.get((caller_q, target), []):
                        arg = self._bind_field(cls, call, fname)
                        note = self._entry_note(caller_q, entry_reach)
                        if arg is None:
                            continue
                        if arg is _NO_DEFAULT:
                            default = cls.fields.get(fname)
                            if isinstance(default, ast.Constant) and default.value is None:
                                self.report(
                                    caller.path, call,
                                    f"constructs {cls.name} without {fname!r} "
                                    f"(default None): its methods build {rng}() "
                                    f"from that field — pass an explicit "
                                    f"seed{note}",
                                )
                        elif isinstance(arg, ast.Constant) and arg.value is None:
                            self.report(
                                caller.path, call,
                                f"passes {fname}=None to {cls.name}, whose "
                                f"methods build {rng}() from that field{note}",
                            )

    @staticmethod
    def _bind_field(cls: ClassInfo, call: ast.Call, fname: str):
        if any(isinstance(a, ast.Starred) for a in call.args) or any(
            kw.arg is None for kw in call.keywords
        ):
            return None
        for kw in call.keywords:
            if kw.arg == fname:
                return kw.value
        names = list(cls.fields)
        try:
            pos = names.index(fname)
        except ValueError:
            return None
        if pos < len(call.args):
            return call.args[pos]
        return _NO_DEFAULT


# ======================================================================
# RPL102 — await atomicity
# ======================================================================
_FRESH = 1
_STALE = 2


class AwaitAtomicityChecker(FlowChecker):
    """RPL102 — ``self.*`` read before an ``await``, written stale after.

    asyncio gives atomicity for free *between* awaits: a coroutine
    cannot be preempted except where it awaits. The race class this rule
    catches is exactly the one that breaks when that guarantee is
    relied on across an ``await``: read ``self.x`` (often as a guard),
    suspend, then write ``self.x`` from the pre-await picture — another
    task may have run the same code in between, so both pass the guard
    and both write. The operand of an ``await`` is itself a pre-
    suspension read (``await self._worker`` reads the task, *then*
    suspends), so a write after it is still a stale write.

    A re-read after the latest await makes the state fresh again;
    ``self.x += …`` re-reads at the write site and is not flagged
    (unless its right-hand side itself awaits); writes with no prior
    read are blind initialization and fine. Scoped to ``repro/serve``
    coroutines — the rule that must be green before shards move across
    a process boundary, where every one of these races stops being
    theoretical.
    """

    rule_id = "RPL102"
    summary = "self state read before an await and written stale after it"

    @staticmethod
    def _applies(fn: FunctionInfo) -> bool:
        return (
            fn.is_async
            and "repro/serve" in fn.path.replace("\\", "/")
            and bool(fn.params)
            and fn.params[0] == "self"
        )

    def check_project(self, index: ProjectIndex, graph: CallGraph) -> None:
        for qualname in sorted(index.functions):
            fn = index.functions[qualname]
            if self._applies(fn):
                self._check_function(fn)

    def _check_function(self, fn: FunctionInfo) -> None:
        cfg = build_cfg(fn.node)

        def transfer(nid, stmt, state, reporter=None):
            st = dict(state)
            if stmt is not None:
                self._stmt(stmt, st, fn, reporter)
            return st

        def join(a, b):
            merged = dict(a)
            for k, v in b.items():
                merged[k] = max(merged.get(k, 0), v)
            return merged

        in_states, _ = forward_dataflow(
            cfg, {}, transfer, join, kinds=("normal", "raise")
        )
        for nid in sorted(cfg.nodes):
            if nid in in_states:
                transfer(nid, cfg.nodes[nid], in_states[nid], reporter=True)

    # -- statement/expression walk (evaluation order) ------------------
    def _stmt(self, stmt: ast.stmt, st: dict, fn: FunctionInfo, reporter) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.AugAssign):
            tgt = stmt.target
            rmw_attr = (
                tgt.attr
                if isinstance(tgt, ast.Attribute)
                and isinstance(tgt.value, ast.Name)
                and tgt.value.id == "self"
                else None
            )
            if rmw_attr is not None and self._contains_await(stmt.value):
                # `self.x += await f()` loads self.x *before* the await
                st[rmw_attr] = _FRESH
                self._eval(stmt.value, st)
                if st.get(rmw_attr) == _STALE:
                    self._flag(stmt, rmw_attr, fn, reporter)
            else:
                self._eval(stmt.value, st)
            if rmw_attr is not None:
                st[rmw_attr] = _FRESH
            return
        for expr in _own_exprs(stmt):
            self._eval(expr, st)
        if isinstance(stmt, (ast.AsyncFor, ast.AsyncWith)):
            # each iteration / enter-exit suspends
            self._suspend(st)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for tgt in targets:
                self._store(tgt, st, stmt, fn, reporter)

    @staticmethod
    def _contains_await(expr: ast.expr) -> bool:
        return any(isinstance(n, ast.Await) for n in ast.walk(expr))

    @staticmethod
    def _suspend(st: dict) -> None:
        for k, v in st.items():
            if v == _FRESH:
                st[k] = _STALE

    def _eval(self, node: ast.AST, st: dict) -> None:
        if isinstance(node, ast.Await):
            self._eval(node.value, st)
            self._suspend(st)
            return
        if isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            st[node.attr] = _FRESH
            return
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, ast.stmt):
                self._eval(child, st)

    def _store(self, tgt: ast.expr, st: dict, stmt, fn, reporter) -> None:
        if isinstance(tgt, (ast.Tuple, ast.List)):
            for elt in tgt.elts:
                self._store(elt, st, stmt, fn, reporter)
            return
        if (
            isinstance(tgt, ast.Attribute)
            and isinstance(tgt.value, ast.Name)
            and tgt.value.id == "self"
        ):
            if st.get(tgt.attr) == _STALE:
                self._flag(stmt, tgt.attr, fn, reporter)
            st[tgt.attr] = _FRESH

    def _flag(self, stmt, attr, fn, reporter) -> None:
        if reporter:
            self.report(
                fn.path, stmt,
                f"'self.{attr}' was read before an await and is written here "
                "from that stale pre-await state; another task may have run in "
                "between — re-read it after the await, or claim-and-write "
                "before the first await",
            )


# ======================================================================
# RPL103 — ledger conservation
# ======================================================================
class LedgerConservationChecker(FlowChecker):
    """RPL103 — a distance-oracle cost must hit exactly one sink per path.

    The paper's cost ratios (§4.1, §8) are only meaningful if every
    cost the oracle hands out is charged exactly once. Three path
    families break that, and all three have bitten dynamically:

    - **never recorded** — a cost variable assigned from the oracle
      (``*.distance(..)``, ``self._dist(..)``, ``pair_distance``,
      ``distance_upper_bound``, ``path_length``) reaches a return or an
      explicit raise on some CFG path without being consumed by
      anything (a silently wasted Dijkstra solve at best, an
      unaccounted cost at worst);
    - **double record** — the same cost variable flows into two
      ledger/perf sinks on one path;
    - **charge then raise** — a sink already fired on a path that then
      reaches an explicit ``raise`` (including a re-raise in an
      ``except`` entered *after* the sink): the caller sees failure,
      retries, and the cost is charged twice. Exception edges are part
      of the analysis, so the handler case is caught.

    Consumption is generous — passing the variable to any call,
    returning it, storing it into an object all count — so the only
    "never recorded" findings are values that some path truly drops.
    """

    rule_id = "RPL103"
    summary = "oracle cost must flow into exactly one ledger sink per path"

    _SOURCES = frozenset(
        {"distance", "pair_distance", "distance_upper_bound", "path_length", "_dist"}
    )
    _SINKS = frozenset(
        {
            "record_publish", "record_maintenance", "record_query",
            "record_noop_move", "tag_rehome", "incr", "observe",
        }
    )

    # -- classification ------------------------------------------------
    def _is_source_call(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        f = node.func
        if isinstance(f, ast.Attribute):
            return f.attr in self._SOURCES
        return isinstance(f, ast.Name) and f.id in self._SOURCES

    def _is_sink_call(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self._SINKS
        )

    def _contains_source(self, expr: ast.expr) -> bool:
        return any(self._is_source_call(n) for n in ast.walk(expr))

    def check_project(self, index: ProjectIndex, graph: CallGraph) -> None:
        for qualname in sorted(index.functions):
            fn = index.functions[qualname]
            body_nodes = list(ast.walk(fn.node))
            has_source = any(self._is_source_call(n) for n in body_nodes)
            has_sink = any(self._is_sink_call(n) for n in body_nodes)
            if not (has_source or has_sink):
                continue
            cost_vars = self._cost_vars(fn)
            if has_source and cost_vars:
                self._check_conservation(fn, cost_vars)
            if has_sink:
                self._check_charge_then_raise(fn, cost_vars)

    def _cost_vars(self, fn: FunctionInfo) -> frozenset[str]:
        out = set()
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and self._contains_source(node.value)
            ):
                out.add(node.targets[0].id)
        return frozenset(out)

    # -- shared transfer -----------------------------------------------
    # state: {"vars": {name: (frozenset[assign line], sink count)},
    #         "rec": bool}
    @staticmethod
    def _join(a, b):
        merged_vars = dict(a["vars"])
        for v, (lines, sinks) in b["vars"].items():
            pl, ps = merged_vars.get(v, (frozenset(), 0))
            merged_vars[v] = (pl | lines, max(ps, sinks))
        return {"vars": merged_vars, "rec": a["rec"] or b["rec"]}

    def _transfer(self, stmt, state, cost_vars, fn, reporter, families):
        st = {"vars": dict(state["vars"]), "rec": state["rec"]}
        if stmt is None or isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return st
        exprs = _own_exprs(stmt)
        sink_calls = [n for n in _walk_exprs(exprs) if self._is_sink_call(n)]
        if isinstance(stmt, ast.Raise) and "raise" in families and st["rec"]:
            if reporter:
                self.report(
                    fn.path, stmt,
                    "a cost was already recorded into a ledger sink on this "
                    "path; raising here hands the caller a failure *after* "
                    "the charge (a retry double-records) — record only after "
                    "the last point that can fail, or roll the charge back",
                )
        if sink_calls:
            st["rec"] = True
        # uses of tracked cost variables
        sink_arg_names: dict[str, int] = {}
        for call in sink_calls:
            names = {
                n.id
                for a in [*call.args, *[kw.value for kw in call.keywords]]
                for n in ast.walk(a)
                if isinstance(n, ast.Name)
            }
            for name in names & cost_vars:
                sink_arg_names[name] = sink_arg_names.get(name, 0) + 1
        sink_spans = {id(n) for call in sink_calls for n in ast.walk(call)}
        for node in _walk_exprs(exprs):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in cost_vars
                and id(node) not in sink_spans
            ):
                lines, sinks = st["vars"].get(node.id, (frozenset(), 0))
                st["vars"][node.id] = (frozenset(), sinks)  # escaped: consumed
        for name, count in sorted(sink_arg_names.items()):
            lines, sinks = st["vars"].get(name, (frozenset(), 0))
            total = sinks + count
            if total >= 2 and "double" in families and reporter:
                self.report(
                    fn.path, stmt,
                    f"cost {name!r} flows into a ledger/perf sink for the "
                    f"{self._nth(total)} time on the same path — each computed "
                    "cost must be recorded exactly once",
                )
            st["vars"][name] = (frozenset(), min(total, 2))
        # (re)definitions
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
            stmt.targets[0], ast.Name
        ):
            name = stmt.targets[0].id
            if name in cost_vars:
                if self._contains_source(stmt.value):
                    st["vars"][name] = (frozenset({stmt.lineno}), 0)
                else:
                    st["vars"][name] = (frozenset(), 0)
        elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            if name in cost_vars:
                lines, sinks = st["vars"].get(name, (frozenset(), 0))
                if self._contains_source(stmt.value):
                    st["vars"][name] = (lines | {stmt.lineno}, sinks)
        return st

    @staticmethod
    def _nth(n: int) -> str:
        return {2: "second"}.get(n, f"{n}th")

    # -- family 1 + 2: conservation along normal/explicit-raise paths --
    def _check_conservation(self, fn: FunctionInfo, cost_vars: frozenset[str]) -> None:
        cfg = build_cfg(fn.node)
        init = {"vars": {}, "rec": False}

        def transfer(nid, stmt, state, reporter=None):
            return self._transfer(
                stmt, state, cost_vars, fn, reporter, families=("double",)
            )

        in_states, out_states = forward_dataflow(
            cfg, init, transfer, self._join, kinds=("normal", "raise")
        )
        for nid in sorted(cfg.nodes):
            if nid in in_states:
                transfer(nid, cfg.nodes[nid], in_states[nid], reporter=True)
        for exit_node, how in ((EXIT, "return"), (RAISE, "raise")):
            state = in_states.get(exit_node)
            if state is None:
                continue
            for name in sorted(state["vars"]):
                lines, _ = state["vars"][name]
                for line in sorted(lines):
                    anchor = ast.stmt()
                    anchor.lineno, anchor.col_offset = line, 0
                    self.report(
                        fn.path, anchor,
                        f"distance-oracle cost {name!r} computed here can "
                        f"reach a {how} without flowing into any ledger/perf "
                        "sink — a wasted solve at best, an unaccounted cost "
                        "at worst; record it or move the solve past the "
                        "early exit",
                    )

    # -- family 3: charge-then-raise, exception edges included ---------
    def _check_charge_then_raise(
        self, fn: FunctionInfo, cost_vars: frozenset[str]
    ) -> None:
        cfg = build_cfg(fn.node)
        init = {"vars": {}, "rec": False}

        def transfer(nid, stmt, state, reporter=None):
            return self._transfer(
                stmt, state, cost_vars, fn, reporter, families=("raise",)
            )

        in_states, _ = forward_dataflow(
            cfg, init, transfer, self._join, kinds=("normal", "raise", "exc")
        )
        for nid in sorted(cfg.nodes):
            if nid in in_states:
                transfer(nid, cfg.nodes[nid], in_states[nid], reporter=True)


# ======================================================================
# RPL104 — DistanceBackend protocol conformance
# ======================================================================
class BackendProtocolChecker(FlowChecker):
    """RPL104 — registered backends must implement ``DistanceBackend``.

    The static complement of the ``repro audit-backend`` runtime gate:
    every factory handed to ``register_backend`` (and every entry of the
    built-in ``_FACTORIES`` table) is resolved to its backend class,
    whose indexed MRO must provide each protocol member — the three
    properties and every method, with a compatible signature (same
    required positionals in the same order; extra parameters must be
    defaulted; ``*args``/``**kwargs`` absorb anything). A backend that
    passes here can still fail the runtime audit on *semantics* — this
    rule removes the class of failures where a backend is missing
    surface entirely and only explodes on the first exotic call path.
    """

    rule_id = "RPL104"
    summary = "registered backend missing part of the DistanceBackend surface"

    _PROTOCOL = "DistanceBackend"

    def check_project(self, index: ProjectIndex, graph: CallGraph) -> None:
        protocols = sorted(
            q for q in index.classes if q.rsplit(".", 1)[-1] == self._PROTOCOL
        )
        if not protocols:
            return
        protocol = index.classes[protocols[0]]
        required = self._protocol_members(protocol)
        for mod_name in sorted(index.modules):
            mod = index.modules[mod_name]
            for site, factory in self._registration_sites(index, mod):
                cls = self._resolve_backend_class(index, mod_name, factory)
                if cls is not None:
                    self._check_conformance(mod.path, site, cls, required, index)

    # -- what the protocol demands -------------------------------------
    @staticmethod
    def _protocol_members(
        protocol: ClassInfo,
    ) -> dict[str, FunctionInfo | None]:
        """member name → FunctionInfo for methods, None for properties."""
        out: dict[str, FunctionInfo | None] = {}
        for name, fi in protocol.methods.items():
            if name.startswith("_"):
                continue
            is_prop = any(
                dotted_name(d) == "property" for d in fi.node.decorator_list
            )
            out[name] = None if is_prop else fi
        return out

    # -- where backends get registered ---------------------------------
    def _registration_sites(self, index: ProjectIndex, mod):
        sites: list[tuple[ast.AST, ast.expr]] = []
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Call):
                resolved = index.resolve(mod.name, dotted_name(node.func))
                if (
                    resolved is not None
                    and resolved.rsplit(".", 1)[-1] == "register_backend"
                    and len(node.args) >= 2
                ):
                    sites.append((node, node.args[1]))
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Dict):
                if any(
                    isinstance(t, ast.Name) and t.id == "_FACTORIES"
                    for t in node.targets
                ):
                    for value in node.value.values:
                        sites.append((value, value))
        return sites

    def _resolve_backend_class(
        self, index: ProjectIndex, module: str, factory: ast.expr
    ) -> ClassInfo | None:
        if isinstance(factory, (ast.Name, ast.Attribute)):
            target = index.resolve(module, dotted_name(factory))
            if target is None:
                return None
            if target in index.classes:
                return index.classes[target]
            fn = index.functions.get(target)
            if fn is not None:
                return self._class_from_returns(index, fn)
            return None
        if isinstance(factory, ast.Lambda) and isinstance(factory.body, ast.Call):
            return index.resolve_class(module, dotted_name(factory.body.func))
        return None

    @staticmethod
    def _class_from_returns(index: ProjectIndex, fn: FunctionInfo) -> ClassInfo | None:
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Call):
                cls = index.resolve_class(fn.module, dotted_name(node.value.func))
                if cls is not None:
                    return cls
        return None

    # -- conformance ----------------------------------------------------
    def _check_conformance(
        self,
        path: str,
        site: ast.AST,
        cls: ClassInfo,
        required: dict[str, FunctionInfo | None],
        index: ProjectIndex,
    ) -> None:
        mro = index.method_resolution_order(cls)
        for name in sorted(required):
            proto_fn = required[name]
            impl = next((c.methods[name] for c in mro if name in c.methods), None)
            if proto_fn is None:  # property: attribute or property suffices
                has_attr = impl is not None or any(
                    name in c.fields or name in c.class_attrs for c in mro
                )
                if not has_attr:
                    self.report(
                        path, site,
                        f"backend {cls.name!r} lacks DistanceBackend property "
                        f"{name!r}",
                    )
                continue
            if impl is None:
                self.report(
                    path, site,
                    f"backend {cls.name!r} lacks DistanceBackend method "
                    f"{name!r} — the runtime audit would only catch this on "
                    "the first call",
                )
                continue
            problem = self._signature_mismatch(proto_fn, impl)
            if problem:
                self.report(
                    path, site,
                    f"backend {cls.name!r} method {name!r} is not callable as "
                    f"DistanceBackend.{name}: {problem}",
                )

    @staticmethod
    def _signature_mismatch(proto: FunctionInfo, impl: FunctionInfo) -> str | None:
        pa, ia = proto.node.args, impl.node.args
        if ia.vararg is not None or ia.kwarg is not None:
            return None  # *args/**kwargs absorb any protocol call
        def positionals(a):
            names = [p.arg for p in (*a.posonlyargs, *a.args)]
            return names[1:] if names and names[0] in ("self", "cls") else names
        proto_pos, impl_pos = positionals(pa), positionals(ia)
        if impl_pos[: len(proto_pos)] != proto_pos:
            return (
                f"positional parameters ({', '.join(impl_pos)}) do not match "
                f"the protocol's ({', '.join(proto_pos)})"
            )
        extra = impl_pos[len(proto_pos):]
        n_required = len(impl_pos) - len(ia.defaults)
        if extra and len(proto_pos) < n_required:
            return (
                f"adds required parameter(s) {', '.join(impl_pos[len(proto_pos):n_required])} "
                "beyond the protocol signature"
            )
        proto_required = len(proto_pos) - len(pa.defaults)
        if n_required > proto_required:
            return (
                f"requires {n_required} positional argument(s) where the "
                f"protocol guarantees only {proto_required}"
            )
        impl_kwonly = {p.arg for p in ia.kwonlyargs}
        for kw in pa.kwonlyargs:
            if kw.arg not in impl_kwonly and kw.arg not in impl_pos:
                return f"missing keyword parameter {kw.arg!r}"
        return None


# ======================================================================
# RPL105 — worker frame-protocol totality
# ======================================================================
class WorkerProtocolChecker(FlowChecker):
    """RPL105 — the worker handler table must mirror the transport protocol.

    The process boundary is a closed protocol: ``repro.serve.transport``
    enumerates the frame kinds, ``repro.serve.worker`` dispatches
    request frames through its module-level ``_HANDLERS`` table. Nothing
    ties the two together at runtime until a frame actually arrives — a
    request kind added to the transport without a handler is a
    ``KeyError`` inside a forked child, surfacing on the parent as an
    opaque :class:`ChannelClosed` after the worker dies. This rule
    closes the gap statically:

    - the handler table's keys must equal ``REQUEST_KINDS`` exactly —
      no uncovered request, no unreachable handler;
    - every literal kind passed to a ``.send(...)`` call in the worker
      module must be an enumerated frame kind (requests + replies), so
      a typo'd frame fails the build instead of the codec check at
      runtime.
    """

    rule_id = "RPL105"
    summary = "worker frame protocol out of sync with the transport kind tables"

    _TRANSPORT_SUFFIX = "serve.transport"
    _WORKER_SUFFIX = "serve.worker"
    _TABLE = "_HANDLERS"

    def check_project(self, index: ProjectIndex, graph: CallGraph) -> None:
        transport = self._module_by_suffix(index, self._TRANSPORT_SUFFIX)
        worker = self._module_by_suffix(index, self._WORKER_SUFFIX)
        if transport is None or worker is None:
            return  # only half the protocol in scope: nothing to hold together
        request_kinds = self._string_tuple(transport.tree, "REQUEST_KINDS")
        reply_kinds = self._string_tuple(transport.tree, "REPLY_KINDS")
        table = self._handler_table(worker.tree)
        if request_kinds is not None and table is not None:
            node, keys = table
            for kind in sorted(set(request_kinds) - set(keys)):
                self.report(
                    worker.path, node,
                    f"request kind {kind!r} has no {self._TABLE} handler — "
                    "it would KeyError inside the worker process",
                )
            for kind in sorted(set(keys) - set(request_kinds)):
                self.report(
                    worker.path, node,
                    f"{self._TABLE} key {kind!r} is not in the transport's "
                    "REQUEST_KINDS — an unreachable handler",
                )
        if request_kinds is None or reply_kinds is None:
            return
        frame_kinds = set(request_kinds) | set(reply_kinds)
        for call, kind in self._send_literals(worker.tree):
            if kind not in frame_kinds:
                self.report(
                    worker.path, call,
                    f"send of unknown frame kind {kind!r} — not in the "
                    "transport's REQUEST_KINDS/REPLY_KINDS",
                )

    # -- the two protocol halves ---------------------------------------
    @staticmethod
    def _module_by_suffix(index: ProjectIndex, suffix: str):
        names = sorted(
            n for n in index.modules if n == suffix or n.endswith("." + suffix)
        )
        return index.modules[names[0]] if names else None

    @staticmethod
    def _string_tuple(tree: ast.Module, name: str) -> tuple[str, ...] | None:
        """A module-level all-string tuple/list constant, if present."""
        for stmt in tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == name
            ):
                value = stmt.value
            elif (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == name
                and stmt.value is not None
            ):
                value = stmt.value
            else:
                continue
            if isinstance(value, (ast.Tuple, ast.List)) and all(
                isinstance(e, ast.Constant) and isinstance(e.value, str)
                for e in value.elts
            ):
                return tuple(e.value for e in value.elts)
            return None  # computed (e.g. FRAME_KINDS = A + B): not comparable
        return None

    def _handler_table(self, tree: ast.Module):
        """The module-level ``_HANDLERS`` dict with all-string keys."""
        for stmt in tree.body:
            if (
                isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == self._TABLE
                    for t in stmt.targets
                )
                and isinstance(stmt.value, ast.Dict)
            ):
                keys = [
                    k.value
                    for k in stmt.value.keys
                    if isinstance(k, ast.Constant) and isinstance(k.value, str)
                ]
                if len(keys) == len(stmt.value.keys):
                    return stmt, tuple(keys)
        return None

    @staticmethod
    def _send_literals(tree: ast.Module):
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "send"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                yield node, node.args[0].value


#: every interprocedural rule, in id order
FLOW_CHECKERS: tuple[type[FlowChecker], ...] = (
    SeedTaintChecker,
    AwaitAtomicityChecker,
    LedgerConservationChecker,
    BackendProtocolChecker,
    WorkerProtocolChecker,
)

#: rule id → one-line summary (docs page and SARIF metadata)
FLOW_RULE_SUMMARIES: dict[str, str] = {c.rule_id: c.summary for c in FLOW_CHECKERS}
