"""The ``repro check`` driver: index → call graph → rules → report.

Mirrors :mod:`repro.staticcheck.runner` (the ``repro lint`` driver) but
runs the interprocedural families, which need every file at once rather
than one file at a time. Findings flow through the same suppression
syntax (``# repro-lint: disable=RPL10x``) with statement-span matching,
and the same exit contract: 0 clean, 1 findings, 2 usage error.

The parsed index and call graph can be cached on disk (``--cache``),
keyed on a SHA-256 over every (path, source) pair plus a format
version — any edit anywhere invalidates the whole artifact, which is
the only safe granularity for whole-program analysis. Rules and
suppression filtering always re-run; only parsing and call resolution
are skipped on a hit, and a stale/corrupt cache file is silently
rebuilt, never trusted.
"""

from __future__ import annotations

import hashlib
import pickle
import sys
from pathlib import Path
from typing import Iterable, Sequence, TextIO

from repro.staticcheck.diagnostics import (
    Diagnostic,
    render_human,
    render_json,
    render_sarif,
)
from repro.staticcheck.flow.callgraph import CallGraph, build_call_graph
from repro.staticcheck.flow.flowrules import FLOW_CHECKERS, FLOW_RULE_SUMMARIES
from repro.staticcheck.flow.modules import ProjectIndex
from repro.staticcheck.suppressions import SuppressionTable

__all__ = ["FLOW_RULE_IDS", "check_paths", "check_sources", "run_check"]

#: rule ids ``repro check`` enforces (suppressions of anything else
#: belong to ``repro lint`` and are not "unused" here)
FLOW_RULE_IDS: tuple[str, ...] = tuple(c.rule_id for c in FLOW_CHECKERS)

#: rule id for files the parser rejects — shared with ``repro lint``
PARSE_ERROR_RULE = "RPL999"

#: bump when the pickled (index, graph) layout changes
_CACHE_VERSION = 1


def _digest(sources: Sequence[tuple[str, str]]) -> str:
    h = hashlib.sha256()
    h.update(f"v{_CACHE_VERSION}".encode())
    for path, source in sorted(sources):
        h.update(path.encode("utf-8", "replace"))
        h.update(b"\x00")
        h.update(source.encode("utf-8", "replace"))
        h.update(b"\x00")
    return h.hexdigest()


def _build(sources: Sequence[tuple[str, str]]) -> tuple[ProjectIndex, CallGraph]:
    index = ProjectIndex.from_sources(sources)
    return index, build_call_graph(index)


def _load_or_build(
    sources: Sequence[tuple[str, str]], cache: Path | str | None
) -> tuple[ProjectIndex, CallGraph]:
    if cache is None:
        return _build(sources)
    cache = Path(cache)
    digest = _digest(sources)
    if cache.is_file():
        try:
            payload = pickle.loads(cache.read_bytes())
            if (
                payload.get("version") == _CACHE_VERSION
                and payload.get("digest") == digest
            ):
                return payload["index"], payload["graph"]
        except Exception:  # corrupt/foreign cache: rebuild below
            pass
    index, graph = _build(sources)
    tmp = cache.with_suffix(cache.suffix + ".tmp")
    try:
        cache.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_bytes(
            pickle.dumps(
                {"version": _CACHE_VERSION, "digest": digest, "index": index, "graph": graph}
            )
        )
        tmp.replace(cache)
    except OSError:  # read-only checkout etc. — caching is best-effort
        tmp.unlink(missing_ok=True)
    return index, graph


def check_sources(
    sources: Iterable[tuple[str, str]],
    cache: Path | str | None = None,
) -> list[Diagnostic]:
    """Run every flow rule over ``(path, source)`` pairs; the workhorse.

    Returns the sorted findings after suppression filtering, including
    RPL999 for unparseable files and RPL000 for suppressions of check
    rules that silenced nothing.
    """
    sources = list(sources)
    index, graph = _load_or_build(sources, cache)

    raw: list[Diagnostic] = []
    for checker_cls in FLOW_CHECKERS:
        checker = checker_cls()
        checker.check_project(index, graph)
        raw.extend(checker.diagnostics)

    kept: list[Diagnostic] = [
        Diagnostic(path=p, line=ln, col=col, rule=PARSE_ERROR_RULE, message=msg)
        for p, ln, col, msg in index.parse_errors
    ]
    tables = {
        mod.path: SuppressionTable(mod.source, mod.path, tree=mod.tree)
        for mod in index.modules.values()
    }
    for diag in raw:
        table = tables.get(diag.path)
        if table is None or not table.is_suppressed(diag.line, diag.rule):
            kept.append(diag)
    for path in sorted(tables):
        kept.extend(tables[path].unused(known_rules=FLOW_RULE_IDS))
    return sorted(kept)


def check_paths(
    paths: Sequence[Path | str],
    cache: Path | str | None = None,
) -> list[Diagnostic]:
    """Run the flow rules over every ``.py`` file under ``paths``."""
    from repro.staticcheck.runner import iter_python_files

    files = iter_python_files(paths)
    return check_sources(
        ((str(p), p.read_text(encoding="utf-8")) for p in files), cache=cache
    )


def run_check(
    paths: Sequence[Path | str],
    fmt: str = "text",
    stream: TextIO | None = None,
    cache: Path | str | None = None,
) -> int:
    """CLI driver: check, print a report, return the exit code (0 = clean)."""
    if fmt not in ("text", "json", "sarif"):
        raise ValueError(f"unknown format {fmt!r}; choose 'text', 'json' or 'sarif'")
    stream = stream if stream is not None else sys.stdout
    diagnostics = check_paths(paths, cache=cache)
    if fmt == "json":
        report = render_json(diagnostics)
    elif fmt == "sarif":
        report = render_sarif(
            diagnostics, tool_name="repro-check", rule_summaries=FLOW_RULE_SUMMARIES
        )
    else:
        report = render_human(diagnostics)
    print(report, file=stream)
    return 1 if diagnostics else 0
