"""Per-function control-flow graphs with exception edges, plus dataflow.

The CFG is statement-granular: every statement is one node, which keeps
exception edges precise — an edge taken because *this* statement raised
carries the state from **before** the statement (the statement may not
have completed), while normal and explicit-``raise`` successors carry
the post-state.

Edge kinds:

``normal``
    ordinary fallthrough / branch / loop edges;
``raise``
    an explicit ``raise`` statement transferring to a handler or out of
    the function;
``exc``
    the implicit "any statement may raise" edge into the innermost
    ``except`` landing pad (or out of the function). Analyses opt in to
    these via the ``kinds`` argument of :func:`forward_dataflow` —
    path-style properties (e.g. "cost never recorded") usually ignore
    them, handler-entry properties (e.g. "charged then re-raised") need
    them.

Synthetic nodes: ``ENTRY`` (0), ``EXIT`` (-1, normal return) and
``RAISE`` (-2, exception leaves the function). ``try``/``finally`` is
approximated: the ``finally`` suite is built once and its exits fan out
to both the normal continuation and the outer exception target.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterable

__all__ = ["ENTRY", "EXIT", "RAISE", "CFG", "build_cfg", "forward_dataflow"]

ENTRY = 0
EXIT = -1
RAISE = -2

#: a dangling edge waiting for its successor: (source node, edge kind)
_Pred = tuple[int, str]


@dataclass
class CFG:
    """One function's flow graph (see module docstring)."""

    func: ast.FunctionDef | ast.AsyncFunctionDef
    nodes: dict[int, ast.stmt] = field(default_factory=dict)
    succ: dict[int, list[tuple[int, str]]] = field(default_factory=dict)

    def successors(self, nid: int, kinds: Iterable[str]) -> list[tuple[int, str]]:
        allowed = set(kinds)
        return [(s, k) for s, k in self.succ.get(nid, []) if k in allowed]

    def edges(self) -> list[tuple[int, int, str]]:
        """Every ``(src, dst, kind)`` edge, deterministically ordered."""
        return sorted(
            (src, dst, kind)
            for src, outs in self.succ.items()
            for dst, kind in outs
        )


class _Builder:
    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.cfg = CFG(func)
        self.cfg.succ[ENTRY] = []
        self._next = 1
        #: innermost exception collector: a list gathers (src, kind)
        #: pairs for the enclosing ``try``; None means "leaves the function"
        self._exc_stack: list[list[_Pred] | None] = [None]
        #: per-loop (break-preds, continue-target-node)
        self._loop_stack: list[tuple[list[_Pred], int]] = []

    # -- plumbing ------------------------------------------------------
    def _new(self, stmt: ast.stmt) -> int:
        nid = self._next
        self._next += 1
        self.cfg.nodes[nid] = stmt
        self.cfg.succ[nid] = []
        return nid

    def _edge(self, src: int, dst: int, kind: str) -> None:
        out = self.cfg.succ.setdefault(src, [])
        if (dst, kind) not in out:
            out.append((dst, kind))

    def _may_raise(self, nid: int, kind: str = "exc") -> None:
        top = self._exc_stack[-1]
        if top is None:
            self._edge(nid, RAISE, kind)
        else:
            top.append((nid, kind))

    # -- construction --------------------------------------------------
    def build(self) -> CFG:
        out = self._suite(self.cfg.func.body, [(ENTRY, "normal")])
        for src, kind in out:
            self._edge(src, EXIT, kind)
        return self.cfg

    def _suite(self, stmts: list[ast.stmt], preds: list[_Pred]) -> list[_Pred]:
        for stmt in stmts:
            preds = self._stmt(stmt, preds)
        return preds

    def _stmt(self, stmt: ast.stmt, preds: list[_Pred]) -> list[_Pred]:
        nid = self._new(stmt)
        for src, kind in preds:
            self._edge(src, nid, kind)
        self._may_raise(nid)

        if isinstance(stmt, ast.Return):
            self._edge(nid, EXIT, "normal")
            return []
        if isinstance(stmt, ast.Raise):
            self._may_raise(nid, "raise")
            return []
        if isinstance(stmt, (ast.Break, ast.Continue)):
            breaks, head = self._loop_stack[-1]
            if isinstance(stmt, ast.Break):
                breaks.append((nid, "normal"))
            else:
                self._edge(nid, head, "normal")
            return []
        if isinstance(stmt, ast.If):
            then_out = self._suite(stmt.body, [(nid, "normal")])
            if stmt.orelse:
                else_out = self._suite(stmt.orelse, [(nid, "normal")])
            else:
                else_out = [(nid, "normal")]
            return then_out + else_out
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            breaks: list[_Pred] = []
            self._loop_stack.append((breaks, nid))
            body_out = self._suite(stmt.body, [(nid, "normal")])
            for src, kind in body_out:
                self._edge(src, nid, kind)
            self._loop_stack.pop()
            infinite = (
                isinstance(stmt, ast.While)
                and isinstance(stmt.test, ast.Constant)
                and bool(stmt.test.value)
            )
            exits: list[_Pred] = [] if infinite else [(nid, "normal")]
            if stmt.orelse:
                exits = self._suite(stmt.orelse, exits)
            return exits + breaks
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._suite(stmt.body, [(nid, "normal")])
        if isinstance(stmt, ast.Try):
            return self._try(stmt, nid)
        # simple statement (Assign, Expr, Assert, nested def, …)
        return [(nid, "normal")]

    def _try(self, stmt: ast.Try, nid: int) -> list[_Pred]:
        collected: list[_Pred] = []
        self._exc_stack.append(collected)
        body_out = self._suite(stmt.body, [(nid, "normal")])
        self._exc_stack.pop()
        if stmt.orelse:
            body_out = self._suite(stmt.orelse, body_out)

        handler_out: list[_Pred] = []
        if stmt.handlers:
            # every raising site may land in every handler (no type matching)
            for handler in stmt.handlers:
                handler_out += self._suite(handler.body, list(collected))
            unhandled: list[_Pred] = []
        else:
            unhandled = collected

        after = body_out + handler_out
        if stmt.finalbody:
            # the finally suite runs on every exit; its tail continues
            # both normally and toward the outer exception target
            fin_out = self._suite(stmt.finalbody, after + unhandled)
            if unhandled:
                for src, _ in fin_out:
                    self._may_raise(src)
            return fin_out
        for src, kind in unhandled:
            top = self._exc_stack[-1]
            if top is None:
                self._edge(src, RAISE, kind)
            else:
                top.append((src, kind))
        return after


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the statement-level CFG of one function."""
    return _Builder(func).build()


def forward_dataflow(
    cfg: CFG,
    init,
    transfer: Callable[[int, ast.stmt | None, object], object],
    join: Callable[[object, object], object],
    kinds: Iterable[str] = ("normal", "raise", "exc"),
) -> tuple[dict, dict]:
    """Forward worklist dataflow over ``cfg``; returns (in, out) states.

    ``transfer(nid, stmt, state)`` must return a *new* state (states are
    treated as immutable values compared with ``==``). Implicit ``exc``
    edges propagate the source's **in**-state (the statement may have
    raised before completing); ``normal`` and ``raise`` edges propagate
    the out-state. Join must be monotone over a finite lattice.
    """
    kinds = tuple(kinds)
    in_states: dict[int, object] = {ENTRY: init}
    out_states: dict[int, object] = {}
    worklist = [ENTRY]
    while worklist:
        nid = worklist.pop(0)
        state = in_states[nid]
        out = transfer(nid, cfg.nodes.get(nid), state)
        out_states[nid] = out
        for succ, kind in cfg.successors(nid, kinds):
            carried = state if kind == "exc" else out
            if succ in in_states:
                merged = join(in_states[succ], carried)
                if merged == in_states[succ]:
                    continue
                in_states[succ] = merged
            else:
                in_states[succ] = carried
            if succ not in (EXIT, RAISE) and succ not in worklist:
                worklist.append(succ)
    return in_states, out_states
