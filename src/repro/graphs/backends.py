"""Pluggable compressed distance backends (the ``DistanceBackend`` protocol).

Every distance answer in this package flows through one of the backends
defined here. :class:`repro.graphs.network.SensorNetwork` owns node
identity (sorting, index maps, weight normalization) and delegates all
shortest-path work to a backend operating purely on integer node
indices. The protocol is deliberately small — the six methods ROADMAP
item 1 names (``distances_from``, ``distances_to_many``,
``pair_distances``, ``k_neighborhood``, ``diameter_bounds``, ``stats``)
plus the single-pair / upper-bound / landmark helpers the trackers
already consumed:

- :class:`FullMatrixBackend` (``"full"``) — one all-pairs Dijkstra up
  front; O(n²) memory, O(1) exact lookups. The seed oracle's full mode.
- :class:`LazyLRUBackend` (``"lazy"``) — exact single-source rows on
  demand in a bounded LRU. The seed oracle's lazy mode.
- :class:`LandmarkBackend` (``"landmark"``) — sub-quadratic: ``k``
  pinned landmark rows (farthest-point traversal) answer
  ``min_L d(u, L) + d(L, v)`` **admissible upper bounds** in O(k) per
  pair / O(k·n) per row, with an *exactness-fallback budget* of full
  Dijkstra solves spent on the first unlimited row queries. Memory is
  O((k + cache) · n) — never the matrix.
- :class:`MemmapFullBackend` (``"memmap"``) — the full matrix stored in
  a fingerprinted :class:`repro.graphs.rowstore.MemmapRowStore` file, so
  several networks / serve shards / worker processes share one copy
  through the OS page cache instead of each materializing O(n²) RAM.

Exactness contract (what each consumer layer may assume):

- **Radius-limited queries are exact under every backend.** A ``limit=``
  query runs a pruned Dijkstra (entries ≤ limit exact, ``inf`` beyond)
  and never consults the approximation. Hierarchy construction
  (``build_levels``, ``_build_parents``) and ``k_neighborhood`` only
  issue limited queries, so the overlay is identical under every
  backend.
- **Unlimited queries are exact on exact backends** (``full``, ``lazy``,
  ``memmap`` — bit-for-bit equal to a dense reference solve) and
  *admissible upper bounds* on ``landmark`` once the exactness budget is
  spent. Tracker cost ledgers therefore remain upper bounds on true
  communication cost; query/maintenance *correctness* (finding the
  object) never depends on distance exactness, only on hierarchy
  pointers.
- **Diameter bounds are always certified.** ``diameter_bounds()``
  returns ``(lo, hi)`` with ``lo ≤ D ≤ hi`` under every backend; the
  landmark backend's double sweep uses exact rows outside the budget.

``python -m repro audit-backend`` (:mod:`repro.graphs.audit`) checks
this contract on small graphs; ``scripts/bench_backend.py`` measures the
100k-node build/query/memory profile.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Callable, Protocol, Sequence, runtime_checkable

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.perf import PERF

__all__ = [
    "DistanceBackend",
    "SsspEngine",
    "FullMatrixBackend",
    "LazyLRUBackend",
    "LandmarkBackend",
    "MemmapFullBackend",
    "BACKEND_NAMES",
    "make_backend",
    "register_backend",
]

#: default landmark count for the upper-bound oracle / landmark backend
DEFAULT_LANDMARKS = 16
#: default exactness-fallback budget of the landmark backend: how many
#: unlimited row queries may run a full Dijkstra before answers switch
#: to landmark upper bounds
DEFAULT_EXACT_BUDGET = 64


def _ball_cutoff(k: float) -> float:
    """Inclusive ball radius: ``k`` plus the project's cost tolerance.

    Nodes at *exactly* distance ``k`` must be inside the k-neighborhood
    (paper §2.1), but weight normalization rescales edge weights so a
    boundary node's distance may land at ``k ± 1e-16``. A raw
    ``dists <= k`` drops it (the float-equality trap RPL004 exists for);
    comparing against ``k + tol·max(1, k)`` mirrors
    :func:`repro.core.costs.close_to` for values near ``k``.
    """
    # function-level import: repro.core imports repro.graphs at package
    # init, so a top-level import would be circular
    from repro.core.costs import DEFAULT_TOLERANCE

    return k + DEFAULT_TOLERANCE * max(1.0, abs(k))


class SsspEngine:
    """Instrumented (multi-source, optionally pruned) Dijkstra solver.

    Wraps the CSR adjacency every backend shares and counts exact row
    solves vs radius-limited ones — the numbers
    ``SensorNetwork.oracle_stats`` reports as ``rows_computed`` /
    ``limited_sssp``. The adjacency is supplied lazily so constructing a
    backend costs nothing until the first solve.
    """

    __slots__ = ("_supplier", "_csr", "rows_computed", "limited_sssp")

    def __init__(self, supplier: Callable[[], csr_matrix]) -> None:
        self._supplier = supplier
        self._csr: csr_matrix | None = None
        self.rows_computed = 0
        self.limited_sssp = 0

    @property
    def csr(self) -> csr_matrix:
        """The shared CSR adjacency (built on first use)."""
        if self._csr is None:
            self._csr = self._supplier()
        return self._csr

    @property
    def n(self) -> int:
        """Number of nodes of the underlying graph."""
        return int(self.csr.shape[0])

    def solve(
        self, indices: int | Sequence[int] | np.ndarray, limit: float | None = None
    ) -> np.ndarray:
        """Raw Dijkstra rows for ``indices`` (pruned at ``limit`` if given)."""
        kwargs = {} if limit is None else {"limit": float(limit)}
        out = dijkstra(self.csr, directed=False, indices=indices, **kwargs)
        k = 1 if np.ndim(indices) == 0 else len(indices)
        if limit is None:
            self.rows_computed += k
            PERF.incr("oracle.rows_computed", k)
        else:
            self.limited_sssp += k
            PERF.incr("oracle.limited_sssp", k)
        return out

    def full_matrix(self) -> np.ndarray:
        """The dense all-pairs matrix (one timed solve, not row-counted)."""
        with PERF.timer("oracle.full_matrix"):
            return dijkstra(self.csr, directed=False)

    def edge_weight(self, i: int, j: int) -> float | None:
        """Weight of edge ``(i, j)``, or ``None`` when not adjacent."""
        m = self.csr
        lo, hi = int(m.indptr[i]), int(m.indptr[i + 1])
        cols = m.indices[lo:hi]
        pos = np.nonzero(cols == j)[0]
        if pos.size == 0:
            return None
        return float(m.data[lo + int(pos[0])])

    def fingerprint(self) -> tuple[int, int, str]:
        """Structural identity of the weighted graph: ``(n, nnz, digest)``.

        Used by the memmap backend to decide whether an on-disk matrix
        belongs to this graph. The digest is a sha256 over the CSR
        arrays themselves (indptr, indices, data), widened to fixed
        dtypes so the value is platform-independent — summary statistics
        like a weight sum collide across distinct unit-weight graphs of
        equal size, which silently attached the wrong matrix.
        """
        m = self.csr
        h = hashlib.sha256()
        for arr, dtype in ((m.indptr, np.int64), (m.indices, np.int64), (m.data, np.float64)):
            h.update(np.ascontiguousarray(arr, dtype=dtype).tobytes())
        return int(m.shape[0]), int(m.nnz), h.hexdigest()


class _RowLRU:
    """Bounded LRU of single-source distance rows, keyed by source index.

    A plain :class:`collections.OrderedDict` with move-to-end on hit and
    eviction of the least-recently-used row past ``capacity``. Counters
    are kept here so ``SensorNetwork.oracle_stats`` can report cache
    pressure without touching the global perf registry.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_rows")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("row cache capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._rows: OrderedDict[int, np.ndarray] = OrderedDict()

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, i: int) -> bool:
        return i in self._rows

    def get(self, i: int) -> np.ndarray | None:
        row = self._rows.get(i)
        if row is None:
            self.misses += 1
            return None
        self._rows.move_to_end(i)
        self.hits += 1
        return row

    def peek(self, i: int) -> np.ndarray | None:
        """Like :meth:`get` but without touching recency or counters."""
        return self._rows.get(i)

    def put(self, i: int, row: np.ndarray) -> None:
        if i in self._rows:
            self._rows.move_to_end(i)
            self._rows[i] = row
            return
        self._rows[i] = row
        if len(self._rows) > self.capacity:
            self._rows.popitem(last=False)
            self.evictions += 1


@runtime_checkable
class DistanceBackend(Protocol):
    """What the distance layer guarantees to every consumer.

    Implementations answer in terms of **integer node indices** (the
    deterministic order ``SensorNetwork`` assigns); the network class
    translates node identifiers at its boundary. ``exact`` declares
    whether unlimited queries are exact; radius-limited queries are
    exact under every backend (see the module docstring's contract).
    """

    @property
    def name(self) -> str:
        """Registry name of this backend (``"full"``, ``"lazy"``, …)."""
        ...

    @property
    def exact(self) -> bool:
        """Whether every unlimited answer equals the true distance."""
        ...

    @property
    def supports_matrix(self) -> bool:
        """Whether :meth:`matrix` can return the all-pairs matrix."""
        ...

    def distances_from(self, i: int) -> np.ndarray:
        """Distances from source index ``i`` to every node."""
        ...

    def distances_to_many(
        self,
        src_idx: Sequence[int],
        tgt_idx: Sequence[int] | None = None,
        limit: float | None = None,
    ) -> np.ndarray:
        """Batched ``(len(src), len(tgt))`` distance block (``None`` = all)."""
        ...

    def pair_distances(self, pairs: Sequence[tuple[int, int]]) -> np.ndarray:
        """``[d(i, j) for i, j in pairs]`` via one batched solve."""
        ...

    def pair_index_distances(self, pairs: np.ndarray) -> np.ndarray:
        """:meth:`pair_distances` over a ``(k, 2)`` index array."""
        ...

    def pair_distance(self, i: int, j: int) -> float:
        """Single-pair distance with the cheap fast paths."""
        ...

    def k_neighborhood(self, i: int, k: float) -> np.ndarray:
        """Sorted indices of every node within distance ``k`` of ``i``."""
        ...

    def diameter_bounds(self) -> tuple[float, float]:
        """Certified ``(lower, upper)`` bracket on the true diameter."""
        ...

    def matrix(self) -> np.ndarray:
        """All-pairs matrix; raises ``RuntimeError`` when unsupported."""
        ...

    def matrix_if_materialized(self) -> np.ndarray | None:
        """The matrix if already resident, else ``None`` (never computes)."""
        ...

    def build_landmarks(self, k: int | None = None) -> tuple[int, ...]:
        """Pin ``k`` landmark rows; returns the chosen indices."""
        ...

    def distance_upper_bound(self, i: int, j: int) -> float:
        """Admissible upper bound on ``d(i, j)`` without a new exact solve."""
        ...

    def stats(self) -> dict[str, int | float | str | bool]:
        """Counters describing oracle pressure (cache, solves, landmarks)."""
        ...


class _BackendBase:
    """Shared machinery: the row LRU, landmark pinning, batched counters.

    Subclasses provide :meth:`distances_from` /
    :meth:`distances_to_many` / :meth:`pair_distance` /
    :meth:`diameter_bounds`; everything derivable (pair batching,
    k-neighborhoods, landmark upper bounds, stats) lives here.
    """

    name = "base"
    exact = True
    supports_matrix = False

    def __init__(self, engine: SsspEngine, n: int, cache_rows: int) -> None:
        self._engine = engine
        self._n = n
        self._rows = _RowLRU(cache_rows)
        self._batched_calls = 0
        self._landmark_idx: np.ndarray | None = None
        self._landmark_rows: np.ndarray | None = None
        self._landmark_k: int | None = None

    # -- required of subclasses ---------------------------------------
    def distances_from(self, i: int) -> np.ndarray:
        raise NotImplementedError

    def distances_to_many(
        self,
        src_idx: Sequence[int],
        tgt_idx: Sequence[int] | None = None,
        limit: float | None = None,
    ) -> np.ndarray:
        raise NotImplementedError

    def pair_distance(self, i: int, j: int) -> float:
        raise NotImplementedError

    def diameter_bounds(self) -> tuple[float, float]:
        raise NotImplementedError

    def matrix(self) -> np.ndarray:
        raise RuntimeError(
            f"the {self.name!r} distance backend does not materialize the "
            "all-pairs matrix"
        )

    def matrix_if_materialized(self) -> np.ndarray | None:
        return None

    # -- shared implementations ---------------------------------------
    def _count_batched(self) -> None:
        self._batched_calls += 1
        PERF.incr("oracle.batched_calls")

    def pair_distances(self, pairs: Sequence[tuple[int, int]]) -> np.ndarray:
        """Unique first elements become sources, unique seconds targets."""
        if not pairs:
            return np.empty(0)
        srcs = list(dict.fromkeys(i for i, _ in pairs))
        tgts = list(dict.fromkeys(j for _, j in pairs))
        spos = {i: k for k, i in enumerate(srcs)}
        tpos = {j: k for k, j in enumerate(tgts)}
        block = self.distances_to_many(srcs, tgts)
        a = np.asarray([spos[i] for i, _ in pairs])
        b = np.asarray([tpos[j] for _, j in pairs])
        return block[a, b]

    def pair_index_distances(self, pairs: np.ndarray) -> np.ndarray:
        """:meth:`pair_distances` over a ``(k, 2)`` index array.

        The columnar batch kernels hold integer node indices; accepting
        the array directly spares them a per-pair tuple conversion.
        """
        if len(pairs) == 0:
            return np.empty(0)
        return self.pair_distances(pairs.tolist())

    def k_neighborhood(self, i: int, k: float) -> np.ndarray:
        """Exact pruned search; boundary nodes kept by the cost tolerance."""
        cutoff = _ball_cutoff(k)
        dists = self._neighborhood_row(i, cutoff)
        return np.nonzero(dists <= cutoff)[0]

    def _neighborhood_row(self, i: int, cutoff: float) -> np.ndarray:
        """A row exact at least up to ``cutoff`` (subclasses specialize)."""
        return self._engine.solve(i, limit=cutoff)

    # -- landmark upper-bound oracle ----------------------------------
    def _pinned_row(self, i: int) -> np.ndarray:
        """An exact row for landmark pinning, reusing caches when present.

        Prefers a row pinned by a previous :meth:`build_landmarks` call
        (a rebuild with a different ``k`` revisits the same traversal
        prefix), then an already-cached LRU row, else runs one exact
        solve.
        """
        if self._landmark_idx is not None and self._landmark_rows is not None:
            pos = np.nonzero(self._landmark_idx == i)[0]
            if pos.size:
                return np.asarray(self._landmark_rows[int(pos[0])])
        row = self._rows.peek(i)
        if row is not None:
            return np.asarray(row)
        return np.asarray(self._engine.solve(i))

    def build_landmarks(self, k: int | None = None) -> tuple[int, ...]:
        """Pick ``k`` landmarks by farthest-point traversal and pin their rows.

        Landmark rows live outside the LRU (they are pinned), costing
        ``k · n`` floats — reported as ``landmark_pinned_bytes`` in
        :meth:`stats`. Deterministic: starts from node 0 and greedily
        maximizes the distance to the chosen set, ties by node index.
        Idempotent: repeat calls with the same effective ``k`` are a
        no-op; a different ``k`` rebuilds (reusing rows pinned by the
        previous build and any cached LRU rows).
        """
        if k is not None and k <= 0:
            raise ValueError("landmark count must be >= 1")
        k = min(k if k is not None else DEFAULT_LANDMARKS, self._n)
        if self._landmark_idx is not None and self._landmark_k == k:
            return tuple(int(i) for i in self._landmark_idx)
        chosen = [0]
        rows = [self._pinned_row(0)]
        while len(chosen) < k:
            mindist = np.minimum.reduce(rows)
            nxt = int(np.argmax(mindist))
            if mindist[nxt] <= 0:  # every node already a landmark
                break
            chosen.append(nxt)
            rows.append(self._pinned_row(nxt))
        self._landmark_idx = np.asarray(chosen)
        self._landmark_rows = np.vstack(rows)
        self._landmark_k = k
        return tuple(chosen)

    def _landmark_bound(self, i: int, j: int) -> float:
        """``min_L d(i, L) + d(L, j)`` — admissible by the triangle inequality."""
        if self._landmark_rows is None:
            self.build_landmarks()
        assert self._landmark_rows is not None
        PERF.incr("oracle.landmark_ub")
        return float(np.min(self._landmark_rows[:, i] + self._landmark_rows[:, j]))

    def distance_upper_bound(self, i: int, j: int) -> float:
        """Exact when free (cached row of either endpoint), else the landmark bound."""
        if i == j:
            return 0.0
        row = self._rows.peek(i)
        if row is not None:
            return float(row[j])
        row = self._rows.peek(j)
        if row is not None:
            return float(row[i])
        return self._landmark_bound(i, j)

    def stats(self) -> dict[str, int | float | str | bool]:
        lm = self._landmark_rows
        return {
            "row_cache_capacity": self._rows.capacity,
            "row_cache_size": len(self._rows),
            "row_cache_hits": self._rows.hits,
            "row_cache_misses": self._rows.misses,
            "row_cache_evictions": self._rows.evictions,
            "rows_computed": self._engine.rows_computed,
            "limited_sssp": self._engine.limited_sssp,
            "batched_calls": self._batched_calls,
            "landmarks": 0 if self._landmark_idx is None else int(self._landmark_idx.size),
            "landmark_pinned_bytes": 0 if lm is None else int(lm.nbytes),
            "matrix_materialized": self.matrix_if_materialized() is not None,
        }


class FullMatrixBackend(_BackendBase):
    """The seed oracle's full mode: one all-pairs solve, exact O(1) lookups."""

    name = "full"
    exact = True
    supports_matrix = True

    def __init__(self, engine: SsspEngine, n: int, cache_rows: int) -> None:
        super().__init__(engine, n, cache_rows)
        self._dist: np.ndarray | None = None

    def _ensure(self) -> np.ndarray:
        if self._dist is None:
            self._dist = self._engine.full_matrix()
        return self._dist

    def matrix(self) -> np.ndarray:
        return self._ensure()

    def matrix_if_materialized(self) -> np.ndarray | None:
        return self._dist

    def distances_from(self, i: int) -> np.ndarray:
        return self._ensure()[i]

    def distances_to_many(
        self,
        src_idx: Sequence[int],
        tgt_idx: Sequence[int] | None = None,
        limit: float | None = None,
    ) -> np.ndarray:
        self._count_batched()
        M = self._ensure()
        if tgt_idx is None:
            return M[list(src_idx)]
        # one fancy-indexed copy of exactly the requested block — an
        # intermediate M[src_idx] would copy all n columns first
        return M[np.asarray(list(src_idx))[:, None], np.asarray(list(tgt_idx))]

    def pair_distance(self, i: int, j: int) -> float:
        return float(self._ensure()[i, j])

    def pair_distances(self, pairs: Sequence[tuple[int, int]]) -> np.ndarray:
        # the base implementation deduplicates sources/targets to keep
        # the distances_to_many block small — pointless when the whole
        # matrix is resident: one fancy-indexed gather beats the Python
        # dict churn (the columnar batch kernels hit this per batch)
        if len(pairs) == 0:
            return np.empty(0)
        self._count_batched()
        arr = np.asarray(pairs, dtype=np.intp)
        return self._ensure()[arr[:, 0], arr[:, 1]]

    def pair_index_distances(self, pairs: np.ndarray) -> np.ndarray:
        if len(pairs) == 0:
            return np.empty(0)
        self._count_batched()
        return self._ensure()[pairs[:, 0], pairs[:, 1]]

    def _neighborhood_row(self, i: int, cutoff: float) -> np.ndarray:
        return self._ensure()[i]

    def diameter_bounds(self) -> tuple[float, float]:
        d = float(self._ensure().max())
        return d, d

    def _pinned_row(self, i: int) -> np.ndarray:
        return np.asarray(self._ensure()[i])

    def distance_upper_bound(self, i: int, j: int) -> float:
        return float(self._ensure()[i, j])  # exact is free here


class LazyLRUBackend(_BackendBase):
    """The seed oracle's lazy mode: exact rows on demand in a bounded LRU."""

    name = "lazy"
    exact = True
    supports_matrix = False

    def distances_from(self, i: int) -> np.ndarray:
        row = self._rows.get(i)
        if row is None:
            row = self._engine.solve(i)
            self._rows.put(i, row)
        return row

    def distances_to_many(
        self,
        src_idx: Sequence[int],
        tgt_idx: Sequence[int] | None = None,
        limit: float | None = None,
    ) -> np.ndarray:
        self._count_batched()
        rows: dict[int, np.ndarray] = {}
        missing: list[int] = []
        # dedupe *before* the cache probe: a duplicated uncached source
        # must count one miss, not one per occurrence
        for i in dict.fromkeys(src_idx):
            cached = self._rows.get(i)
            if cached is not None:
                rows[i] = cached
            else:
                missing.append(i)
        if missing:
            computed = np.atleast_2d(self._solve_missing(missing, limit))
            for k, i in enumerate(missing):
                rows[i] = computed[k]
                if limit is None and self._row_is_exact(computed[k]):
                    self._rows.put(i, computed[k])
        block = (
            np.vstack([rows[i] for i in src_idx]) if src_idx else np.empty((0, self._n))
        )
        return block if tgt_idx is None else block[:, list(tgt_idx)]

    def _solve_missing(self, missing: list[int], limit: float | None) -> np.ndarray:
        """Exact (possibly pruned) rows for the cache misses of one batch."""
        return self._engine.solve(np.asarray(missing), limit=limit)

    def _row_is_exact(self, row: np.ndarray) -> bool:
        """Whether a freshly computed unlimited row may enter the exact LRU."""
        return True

    def pair_distance(self, i: int, j: int) -> float:
        if i == j:
            return 0.0
        row = self._rows.get(i)
        if row is not None:
            return float(row[j])
        row = self._rows.get(j)
        if row is not None:
            return float(row[i])
        w = self._engine.edge_weight(i, j)
        if w is not None:
            # adjacent endpoints: a Dijkstra pruned at the connecting
            # edge's weight is exact and touches only a small ball
            return float(self._engine.solve(i, limit=w)[j])
        return float(self.distances_from(i)[j])

    def _neighborhood_row(self, i: int, cutoff: float) -> np.ndarray:
        row = self._rows.peek(i)
        if row is not None:
            return row
        return self._engine.solve(i, limit=cutoff)

    def _sweep_row(self, i: int) -> np.ndarray:
        """An exact row for the diameter double sweep."""
        return self.distances_from(i)

    def diameter_bounds(self) -> tuple[float, float]:
        """Iterated double sweep: certified ``(estimate, 2·estimate)``.

        Each hop moves to the farthest node seen; eccentricities are
        non-decreasing along the walk, so the first non-improving sweep
        is a fixed point. Every sweep value is a real eccentricity ``e``
        and ``D ≤ 2e`` by the triangle inequality.
        """
        cur = 0
        best = -1.0
        for _ in range(max(2, int(np.ceil(np.log2(self._n + 1))) + 2)):
            row = self._sweep_row(cur)
            far_i = int(np.argmax(row))
            ecc = float(row[far_i])
            if ecc <= best:
                break
            best = ecc
            cur = far_i
        return best, 2.0 * best


class LandmarkBackend(LazyLRUBackend):
    """Sub-quadratic landmark/hub-label distances with an exactness budget.

    Unlimited row/pair queries are exact (and LRU-cached) while the
    *exactness-fallback budget* lasts — each full Dijkstra solve spends
    one unit — and switch to landmark upper bounds
    ``min_L d(u, L) + d(L, v)`` once it is gone: O(k) per pair,
    O(k·n) per row, no new graph traversal. Approximate rows are held in
    their own small LRU and **never** enter the exact row cache.
    Radius-limited queries, adjacency fast paths, k-neighborhoods and
    the diameter sweep stay exact and free of budget charges.
    """

    name = "landmark"
    exact = False
    supports_matrix = False

    def __init__(
        self,
        engine: SsspEngine,
        n: int,
        cache_rows: int,
        num_landmarks: int | None = None,
        exact_budget: int = DEFAULT_EXACT_BUDGET,
    ) -> None:
        super().__init__(engine, n, cache_rows)
        self._num_landmarks = num_landmarks if num_landmarks is not None else DEFAULT_LANDMARKS
        self._exact_budget_initial = max(0, int(exact_budget))
        self._exact_budget = self._exact_budget_initial
        self._approx_rows = _RowLRU(max(1, cache_rows))
        self._approx_row_count = 0
        self._approx_pair_count = 0

    def build_landmarks(self, k: int | None = None) -> tuple[int, ...]:
        # a no-arg call must honour the configured ``num_landmarks``,
        # not the module default — repeat calls stay idempotent
        return super().build_landmarks(k if k is not None else self._num_landmarks)

    # -- approximation machinery --------------------------------------
    def _ensure_landmarks(self) -> np.ndarray:
        if self._landmark_rows is None:
            self.build_landmarks(self._num_landmarks)
        assert self._landmark_rows is not None
        return self._landmark_rows

    def _approx_row(self, i: int) -> np.ndarray:
        """Upper-bound row ``min_L d(i, L) + d(L, ·)`` with a zero diagonal."""
        cached = self._approx_rows.peek(i)
        if cached is not None:
            return cached
        lm = self._ensure_landmarks()
        row = np.min(lm + lm[:, i : i + 1], axis=0)
        row[i] = 0.0  # d(i, i) — the landmark detour is never needed here
        self._approx_row_count += 1
        PERF.incr("oracle.approx_rows")
        self._approx_rows.put(i, row)
        return row

    def _charge_exact(self, rows_needed: int) -> int:
        """Spend up to ``rows_needed`` units of the exactness budget."""
        granted = min(self._exact_budget, rows_needed)
        self._exact_budget -= granted
        return granted

    # -- overridden query paths ---------------------------------------
    def distances_from(self, i: int) -> np.ndarray:
        row = self._rows.get(i)
        if row is not None:
            return row
        if self._charge_exact(1):
            row = self._engine.solve(i)
            self._rows.put(i, row)
            return row
        return self._approx_row(i)

    def _solve_missing(self, missing: list[int], limit: float | None) -> np.ndarray:
        if limit is not None:
            # pruned solves are exact everywhere and cost no budget
            return self._engine.solve(np.asarray(missing), limit=limit)
        granted = self._charge_exact(len(missing))
        if granted:
            exact_part = np.atleast_2d(self._engine.solve(np.asarray(missing[:granted])))
            # the caller's cache hook is off for this backend (approx
            # rows must stay out of the exact LRU), so exact rows are
            # cached here where exactness is known per row
            for k, i in enumerate(missing[:granted]):
                self._rows.put(i, exact_part[k])
        else:
            exact_part = np.empty((0, self._n))
        approx_part = [self._approx_row(i) for i in missing[granted:]]
        if not approx_part:
            return exact_part
        return np.vstack([exact_part, *approx_part])

    def _row_is_exact(self, row: np.ndarray) -> bool:
        # rows past the budget cut are landmark bounds; they are cached
        # in _approx_rows by _approx_row and must never pollute the
        # exact LRU (lazy's put-everything behaviour would)
        return False

    def pair_distance(self, i: int, j: int) -> float:
        if i == j:
            return 0.0
        row = self._rows.get(i)
        if row is not None:
            return float(row[j])
        row = self._rows.get(j)
        if row is not None:
            return float(row[i])
        w = self._engine.edge_weight(i, j)
        if w is not None:
            return float(self._engine.solve(i, limit=w)[j])
        if self._charge_exact(1):
            row = self._engine.solve(i)
            self._rows.put(i, row)
            return float(row[j])
        self._approx_pair_count += 1
        return self._landmark_bound(i, j)

    def _sweep_row(self, i: int) -> np.ndarray:
        # the diameter bracket must stay certified: sweep rows are real
        # eccentricities, so they bypass the budget and use exact solves
        row = self._rows.peek(i)
        if row is not None:
            return row
        row = self._engine.solve(i)
        self._rows.put(i, row)
        return row

    def distance_upper_bound(self, i: int, j: int) -> float:
        if i == j:
            return 0.0
        row = self._rows.peek(i)
        if row is not None:
            return float(row[j])
        row = self._rows.peek(j)
        if row is not None:
            return float(row[i])
        return self._landmark_bound(i, j)

    def stats(self) -> dict[str, int | float | str | bool]:
        out = super().stats()
        out.update(
            {
                "exact_budget_initial": self._exact_budget_initial,
                "exact_budget_remaining": self._exact_budget,
                "approx_rows": self._approx_row_count,
                "approx_pairs": self._approx_pair_count,
                "approx_row_cache_size": len(self._approx_rows),
            }
        )
        return out


class MemmapFullBackend(FullMatrixBackend):
    """Full matrix in a fingerprinted memmap file shared across consumers.

    The first consumer computes the all-pairs matrix once and writes it
    through :class:`repro.graphs.rowstore.MemmapRowStore`; every later
    backend pointed at the same path (other networks, serve shards,
    worker processes) attaches read-only and shares pages through the OS
    page cache instead of materializing its own O(n²) copy. A sidecar
    fingerprint (n, edge count, sha256 of the CSR arrays) guards against
    attaching a stale file from a different graph.
    """

    name = "memmap"
    exact = True
    supports_matrix = True

    def __init__(
        self,
        engine: SsspEngine,
        n: int,
        cache_rows: int,
        path: str | None = None,
    ) -> None:
        super().__init__(engine, n, cache_rows)
        self._path = path
        self._attached = False

    @property
    def path(self) -> str | None:
        """Backing file path (resolved on first use when defaulted)."""
        return self._path

    @property
    def attached(self) -> bool:
        """Whether the matrix was attached from an existing store file."""
        return self._attached

    def _ensure(self) -> np.ndarray:
        if self._dist is None:
            from repro.graphs.rowstore import MemmapRowStore

            store = MemmapRowStore(self._path, self._engine.fingerprint())
            self._path = store.path
            existing = store.attach()
            if existing is not None:
                self._attached = True
                self._dist = existing
            else:
                self._dist = store.create(self._engine.full_matrix())
        return self._dist

    def stats(self) -> dict[str, int | float | str | bool]:
        out = super().stats()
        out.update(
            {
                "memmap_path": self._path or "",
                "memmap_attached": self._attached,
            }
        )
        return out


#: names accepted by :func:`make_backend` / ``SensorNetwork(distance_backend=…)``
BACKEND_NAMES = ("full", "lazy", "landmark", "memmap")

_FACTORIES: dict[str, Callable[..., DistanceBackend]] = {
    "full": FullMatrixBackend,
    "lazy": LazyLRUBackend,
    "landmark": LandmarkBackend,
    "memmap": MemmapFullBackend,
}


def register_backend(name: str, factory: Callable[..., DistanceBackend]) -> None:
    """Register a custom backend factory under ``name``.

    The factory is called as ``factory(engine, n, cache_rows,
    **options)`` and must return a :class:`DistanceBackend`.
    """
    _FACTORIES[name] = factory


def make_backend(
    name: str,
    engine: SsspEngine,
    n: int,
    cache_rows: int,
    options: dict[str, object] | None = None,
) -> DistanceBackend:
    """Construct the backend registered under ``name``.

    ``options`` are forwarded to the factory: the landmark backend
    accepts ``num_landmarks`` and ``exact_budget``, the memmap backend
    ``path``.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise ValueError(
            f"unknown distance backend {name!r} (known: {known})"
        ) from None
    return factory(engine, n, cache_rows, **(options or {}))
