"""Weighted sensor-network model (paper §2.1).

A :class:`SensorNetwork` wraps a connected, weighted, undirected
:class:`networkx.Graph` and exposes the primitives every tracking
algorithm in this package relies on:

- shortest-path distances ``dist_G(u, v)`` answered by a pluggable
  **distance backend** (:mod:`repro.graphs.backends`): ``"full"``
  precomputes the all-pairs matrix, ``"lazy"`` keeps exact
  single-source rows in a bounded LRU, ``"landmark"`` answers
  sub-quadratic admissible upper bounds with an exactness-fallback
  budget, ``"memmap"`` shares one on-disk matrix across consumers,
- batched distance queries (:meth:`SensorNetwork.distances_to_many`,
  :meth:`SensorNetwork.pairwise_submatrix`,
  :meth:`SensorNetwork.pair_distances`,
  :meth:`SensorNetwork.consecutive_distances`) that resolve many
  sources in one Dijkstra call — the hot path of hierarchy
  construction and the trackers,
- the network diameter ``D`` (exact in matrix-backed modes; an iterated
  double-sweep estimate with a certified 2-approximation upper bound
  in row-backed modes — see :attr:`SensorNetwork.diameter_bounds`),
- ``k``-neighborhoods (all nodes within distance ``k``, boundary nodes
  included up to the :mod:`repro.core.costs` tolerance),
- an optional landmark-based *upper-bound* oracle
  (:meth:`SensorNetwork.distance_upper_bound`) for callers that can
  trade exactness for constant-time answers,
- deterministic integer indexing of nodes (node identifiers are sorted
  once; positional access is by :meth:`SensorNetwork.node_at`).

Radius-limited queries (``limit=``) run a pruned Dijkstra under every
backend and bypass all caches — their rows are truncated at the limit
(``inf`` beyond it) and must never be mistaken for exact rows.

Edge weights are *distances* between adjacent sensors, not detection
rates (the paper is explicit about this distinction). Following §2.1 the
weights are normalized so the shortest edge has length 1; all cost-ratio
bounds are then independent of the deployment's physical scale.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

import networkx as nx
import numpy as np
from scipy.sparse import csr_matrix

from repro.graphs.backends import (
    DistanceBackend,
    SsspEngine,
    make_backend,
)

Node = Hashable

__all__ = ["SensorNetwork", "Node"]


class SensorNetwork:
    """A static sensor network ``G = (V, E, w)``.

    Parameters
    ----------
    graph:
        Connected undirected graph. Edge attribute ``weight`` holds the
        inter-sensor distance; missing weights default to 1.0.
    positions:
        Optional mapping node -> (x, y) used by geometric constructions
        (Z-DAT zones) and plotting. Generators in
        :mod:`repro.graphs.generators` always provide positions.
    normalize:
        If true (default), rescale all weights so the minimum edge
        weight is exactly 1 (paper §2.1).
    distance_mode:
        Backwards-compatible backend selector: ``"full"`` precomputes
        the all-pairs matrix (O(n²) memory, fastest repeated queries);
        ``"lazy"`` computes single-source rows on demand and keeps the
        most recent ones in a bounded LRU (scales to hundreds of
        thousands of sensors); ``"auto"`` (default) picks ``full`` up
        to :data:`LAZY_THRESHOLD` nodes. Components that genuinely need
        the whole matrix (doubling-dimension estimation, sparse covers)
        require a matrix-backed mode and say so.
    lazy_cache_rows:
        Capacity of the exact row cache (default
        :data:`LAZY_CACHE_ROWS`). Memory is ``capacity · n`` floats;
        unused by matrix-backed modes.
    distance_backend:
        Full backend selector, superseding ``distance_mode`` when
        given: any name in :data:`repro.graphs.backends.BACKEND_NAMES`
        (``"full"``, ``"lazy"``, ``"landmark"``, ``"memmap"``) or
        ``"auto"``.
    backend_options:
        Extra keyword arguments for the backend factory — the landmark
        backend accepts ``num_landmarks`` and ``exact_budget``, the
        memmap backend ``path``.

    Raises
    ------
    ValueError
        If the graph is empty, disconnected, has a non-positive edge
        weight, or the requested mode/backend is unknown.
    """

    #: "auto" switches from the precomputed matrix to lazy rows here
    LAZY_THRESHOLD = 2048
    #: default lazy-mode row-cache capacity (rows of n floats each)
    LAZY_CACHE_ROWS = 256
    #: default landmark count for the upper-bound oracle
    DEFAULT_LANDMARKS = 16

    def __init__(
        self,
        graph: nx.Graph,
        positions: dict[Node, tuple[float, float]] | None = None,
        normalize: bool = True,
        distance_mode: str = "auto",
        lazy_cache_rows: int | None = None,
        distance_backend: str | None = None,
        backend_options: dict[str, object] | None = None,
    ) -> None:
        if distance_mode not in ("auto", "full", "lazy"):
            raise ValueError(f"unknown distance_mode {distance_mode!r}")
        if graph.number_of_nodes() == 0:
            raise ValueError("sensor network must have at least one node")
        if not nx.is_connected(graph):
            raise ValueError("sensor network must be connected (paper §2.1)")

        self._graph = graph.copy()
        for u, v, data in self._graph.edges(data=True):
            w = float(data.get("weight", 1.0))
            if w <= 0:
                raise ValueError(f"edge ({u!r}, {v!r}) has non-positive weight {w}")
            data["weight"] = w

        if normalize and self._graph.number_of_edges() > 0:
            # function-level import: repro.core imports this module at
            # package init, so a top-level import would be circular
            from repro.core.costs import close_to

            min_w = min(d["weight"] for _, _, d in self._graph.edges(data=True))
            if not close_to(min_w, 1.0):
                for _, _, d in self._graph.edges(data=True):
                    d["weight"] = d["weight"] / min_w

        # Deterministic node ordering: sort by (type name, repr) so mixed
        # id types (rare) still order stably, plain ints/strs sort naturally.
        try:
            self._nodes: list[Node] = sorted(self._graph.nodes())
        except TypeError:
            self._nodes = sorted(self._graph.nodes(), key=repr)
        self._index: dict[Node, int] = {v: i for i, v in enumerate(self._nodes)}
        self._index_proxy: Mapping[Node, int] | None = None
        self._all_idx = list(range(len(self._nodes)))

        self._positions = dict(positions) if positions else None
        name = distance_backend if distance_backend is not None else distance_mode
        if name == "auto":
            name = "full" if len(self._nodes) <= self.LAZY_THRESHOLD else "lazy"
        self._adj_csr: csr_matrix | None = None
        self._engine = SsspEngine(self._adjacency)
        self._backend: DistanceBackend = make_backend(
            name,
            self._engine,
            len(self._nodes),
            self.LAZY_CACHE_ROWS if lazy_cache_rows is None else lazy_cache_rows,
            backend_options,
        )
        self._diameter_bounds: tuple[float, float] | None = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        """The underlying (normalized) networkx graph."""
        return self._graph

    @property
    def n(self) -> int:
        """Number of sensor nodes ``n = |V|``."""
        return len(self._nodes)

    @property
    def nodes(self) -> Sequence[Node]:
        """All node identifiers in deterministic (sorted) order."""
        return tuple(self._nodes)

    def node_at(self, index: int) -> Node:
        """Node identifier at deterministic position ``index``."""
        return self._nodes[index]

    def index_of(self, node: Node) -> int:
        """Deterministic integer index of ``node`` (inverse of :meth:`node_at`)."""
        try:
            return self._index[node]
        except KeyError:
            raise KeyError(f"{node!r} is not a node of this network") from None

    @property
    def index_map(self) -> "Mapping[Node, int]":
        """Read-only node-to-index mapping.

        Hot loops (the columnar batch engine validates every op's node)
        test membership and resolve indices against this directly — a
        C-level dict probe instead of a Python method call per element.
        """
        if self._index_proxy is None:
            self._index_proxy = MappingProxyType(self._index)
        return self._index_proxy

    def __contains__(self, node: Node) -> bool:
        return node in self._index

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def neighbors(self, node: Node) -> list[Node]:
        """Adjacent sensors of ``node`` (an object can move directly between them)."""
        return sorted(self._graph.neighbors(node), key=self.index_of)

    def degree(self, node: Node) -> int:
        """Number of adjacent sensors."""
        return self._graph.degree(node)

    def edge_weight(self, u: Node, v: Node) -> float:
        """Weight (distance) of edge ``(u, v)``."""
        return float(self._graph[u][v]["weight"])

    def position(self, node: Node) -> tuple[float, float]:
        """Geographic position of ``node``.

        Raises :class:`KeyError` when the network carries no positions.
        """
        if self._positions is None:
            raise KeyError("this network has no position information")
        return self._positions[node]

    @property
    def has_positions(self) -> bool:
        """Whether geographic positions are available for all nodes."""
        return self._positions is not None

    # ------------------------------------------------------------------
    # distances (delegated to the backend)
    # ------------------------------------------------------------------
    @property
    def distance_mode(self) -> str:
        """Name of the active distance backend (``"full"``, ``"lazy"``, …)."""
        return self._backend.name

    @property
    def distance_backend(self) -> DistanceBackend:
        """The active :class:`repro.graphs.backends.DistanceBackend`."""
        return self._backend

    @property
    def distances_exact(self) -> bool:
        """Whether unlimited distance answers are exact under this backend.

        Radius-limited queries are exact under *every* backend; see the
        exactness contract in :mod:`repro.graphs.backends`.
        """
        return self._backend.exact

    @property
    def _dist(self) -> np.ndarray | None:
        """The materialized all-pairs matrix, if any (tests/introspection)."""
        return self._backend.matrix_if_materialized()

    def _adjacency(self) -> csr_matrix:
        if self._adj_csr is None:
            n = self.n
            rows: list[int] = []
            cols: list[int] = []
            vals: list[float] = []
            for u, v, data in self._graph.edges(data=True):
                i, j = self._index[u], self._index[v]
                rows.extend((i, j))
                cols.extend((j, i))
                vals.extend((data["weight"], data["weight"]))
            self._adj_csr = csr_matrix((vals, (rows, cols)), shape=(n, n))
        return self._adj_csr

    @property
    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest-path distance matrix, indexed like :meth:`node_at`.

        Computed lazily once; O(n^2) memory. Only matrix-backed
        backends (``full``, ``memmap``) provide it — callers that need
        the whole matrix (doubling estimation, sparse covers) must
        construct the network with ``distance_mode="full"``.
        """
        if not self._backend.supports_matrix:
            mode = self._backend.name
            qualifier = (
                "in lazy distance mode"
                if mode == "lazy"
                else f"under the {mode!r} distance backend"
            )
            raise RuntimeError(
                f"distance_matrix is unavailable {qualifier}; "
                'construct the SensorNetwork with distance_mode="full"'
            )
        return self._backend.matrix()

    def distance(self, u: Node, v: Node) -> float:
        """Shortest-path distance ``dist_G(u, v)``.

        Matrix-backed modes read the matrix. Row-backed modes reuse a
        cached row of either endpoint when one exists; for *adjacent*
        ``u, v`` with no cached row they run a Dijkstra pruned at the
        connecting edge's weight (exact, touches only a small ball)
        instead of computing and caching a full row for a throwaway
        pair. The landmark backend answers an admissible upper bound
        once its exactness budget is spent.
        """
        return self._backend.pair_distance(self._index[u], self._index[v])

    def distances_from(self, u: Node) -> np.ndarray:
        """Vector of shortest-path distances from ``u`` to every node (by index).

        In row-backed modes, rows are computed by single-source
        Dijkstra on first use and kept in a bounded LRU (capacity
        ``lazy_cache_rows``), so memory stays ``O(cache · n)`` no matter
        how many distinct sources a long workload touches.
        """
        return self._backend.distances_from(self._index[u])

    def distances_to_many(
        self,
        sources: Sequence[Node],
        targets: Sequence[Node] | None = None,
        limit: float | None = None,
    ) -> np.ndarray:
        """Batched distances: one row per source, one column per target.

        The workhorse of hierarchy construction: all uncached source
        rows are resolved in a **single** Dijkstra call instead of one
        scipy call per source. Returns a dense
        ``(len(sources), len(targets))`` array (``targets=None`` means
        every node, matrix-indexed) — callers iterating large source
        sets should chunk to bound the transient allocation.

        With ``limit``, the search is pruned at distance ``limit``
        (entries ≤ ``limit`` are exact, ``inf`` beyond — scipy's
        inclusive semantics) and the truncated rows bypass the row
        cache; cached exact rows are still reused. Matrix-backed modes
        always return exact values, even past ``limit``.
        """
        src_idx = [self._index[u] for u in sources]
        tgt_idx = None if targets is None else [self._index[v] for v in targets]
        if tgt_idx is not None and len(tgt_idx) == self.n and tgt_idx == self._all_idx:
            tgt_idx = None  # identity column selection — row copies suffice
        return self._backend.distances_to_many(src_idx, tgt_idx, limit=limit)

    def pairwise_submatrix(
        self, nodes: Sequence[Node], limit: float | None = None
    ) -> np.ndarray:
        """Distances among a node subset, ``out[a, b] = dist(nodes[a], nodes[b])``."""
        return self.distances_to_many(nodes, nodes, limit=limit)

    def pair_distances(self, pairs: Sequence[tuple[Node, Node]]) -> np.ndarray:
        """``[dist(u, v) for u, v in pairs]`` resolved in one batched call.

        The batched replacement for per-pair :meth:`distance` loops
        (lint rule RPL001): unique first elements become Dijkstra
        sources, unique second elements become target columns, so ``k``
        pairs cost one multi-source solve over the distinct sources
        instead of up to ``k`` independent row computations. Duplicate
        pairs and repeated endpoints are free.
        """
        if not pairs:
            return np.empty(0)
        idx_pairs = [(self._index[u], self._index[v]) for u, v in pairs]
        return self._backend.pair_distances(idx_pairs)

    def pair_index_distances(self, pairs: np.ndarray) -> np.ndarray:
        """:meth:`pair_distances` over a ``(k, 2)`` array of node *indices*.

        The columnar batch kernels already hold integer indices; this
        skips the per-pair node-to-index dict lookups (and, on matrix
        backends, resolves as one fancy-indexed gather).
        """
        if len(pairs) == 0:
            return np.empty(0)
        return self._backend.pair_index_distances(pairs)

    def consecutive_distances(self, seq: Sequence[Node]) -> np.ndarray:
        """``[dist(seq[0], seq[1]), dist(seq[1], seq[2]), ...]`` in one batch.

        The distance profile of a message's physical visit sequence
        (detection paths, spine walks). Delegates to
        :meth:`pair_distances` over the consecutive pairs, so all unique
        sources resolve in a single batched call; duplicates in ``seq``
        are free.
        """
        if len(seq) < 2:
            return np.empty(0)
        return self.pair_distances(list(zip(seq[:-1], seq[1:], strict=True)))

    def path_length(self, seq: Sequence[Node]) -> float:
        """Total length of the visit sequence ``seq`` (sum of hops)."""
        return float(self.consecutive_distances(seq).sum())

    @property
    def diameter(self) -> float:
        """Maximum shortest-path distance over all node pairs (``D``, §2.1).

        Matrix-backed modes are exact. Row-backed modes iterate the
        double sweep to a fixed point: sweep from the farthest node
        found so far until the eccentricity stops growing (exact on
        trees, empirically exact on grids/disks, never more than a
        factor 2 below ``D`` in general — see :attr:`diameter_bounds`
        for the certified bracket).
        """
        return self.diameter_bounds[0]

    @property
    def diameter_bounds(self) -> tuple[float, float]:
        """Certified ``(lower, upper)`` bracket on the true diameter.

        Matrix-backed modes return ``(D, D)``. Row-backed modes return
        the iterated double-sweep estimate and twice it: every sweep
        value is a real eccentricity ``e``, and ``D ≤ 2e`` by the
        triangle inequality. Anything sizing level counts or search
        radii off the diameter must use the **upper** bound — the
        estimate itself can under-shoot (that truncated
        ``build_levels`` hierarchies before this bracket existed).
        """
        if self._diameter_bounds is None:
            self._diameter_bounds = self._backend.diameter_bounds()
        return self._diameter_bounds

    def shortest_path(self, u: Node, v: Node) -> list[Node]:
        """One shortest path from ``u`` to ``v`` as a list of nodes."""
        return nx.shortest_path(self._graph, u, v, weight="weight")

    def k_neighborhood(self, node: Node, k: float) -> list[Node]:
        """All nodes within distance ``k`` of ``node``, including ``node`` (§2.1).

        Membership is decided with the :mod:`repro.core.costs`
        tolerance, so a node at *exactly* distance ``k`` whose value
        picked up float noise during weight normalization is never
        dropped (the ``dists <= k`` comparison this replaced could).
        In row-backed modes (with no cached row for ``node``) this runs
        a Dijkstra pruned at ``k`` — it only explores the ball it
        reports, which on big networks is far cheaper than a full row;
        it is exact under every backend.
        """
        hits = self._backend.k_neighborhood(self._index[node], k)
        return [self._nodes[i] for i in hits]

    # ------------------------------------------------------------------
    # landmark upper-bound oracle
    # ------------------------------------------------------------------
    def build_landmarks(self, k: int | None = None) -> tuple[Node, ...]:
        """Pick ``k`` landmarks by farthest-point traversal and pin their rows.

        Landmark rows live outside the LRU (they are pinned), costing
        ``k · n`` floats — reported as ``landmark_pinned_bytes`` in
        :attr:`oracle_stats`. Deterministic: starts from node 0 and
        greedily maximizes the distance to the chosen set, ties by node
        index. Idempotent: a repeat call with the same ``k`` is a
        no-op, and cached LRU rows are reused instead of recomputed.
        """
        chosen = self._backend.build_landmarks(k)
        return tuple(self._nodes[i] for i in chosen)

    def distance_upper_bound(self, u: Node, v: Node) -> float:
        """An upper bound on ``dist_G(u, v)`` that never runs a new Dijkstra.

        Exact whenever it can be for free (matrix-backed modes,
        identical endpoints, or a cached row for either endpoint);
        otherwise the landmark bound ``min_L d(u, L) + d(L, v)`` —
        admissible by the triangle inequality. Landmarks are built on
        first use (:meth:`build_landmarks` tunes ``k``). Intended for
        callers that can act on a safe over-estimate (search-radius
        sizing, candidate pruning) without forcing exact work on the
        hot path.
        """
        return self._backend.distance_upper_bound(self._index[u], self._index[v])

    @property
    def oracle_stats(self) -> dict[str, int | str | float | bool]:
        """Counters describing distance-oracle pressure on this network.

        ``row_cache_*`` report the exact-row LRU (hits/misses include
        every row lookup, batched or not — duplicate sources in one
        batched call count once); ``rows_computed`` counts exact
        single-source Dijkstra solves, ``limited_sssp`` radius-pruned
        ones, ``batched_calls`` invocations of the batched API;
        ``landmark_pinned_bytes`` is the memory pinned outside the LRU
        by :meth:`build_landmarks`. Approximate backends add their own
        counters (``approx_rows``, ``exact_budget_remaining``, …).
        """
        stats: dict[str, int | str | float | bool] = {
            "mode": self._backend.name,
            "n": self.n,
        }
        stats.update(self._backend.stats())
        return stats

    def closest(self, node: Node, candidates: Iterable[Node]) -> Node:
        """Candidate closest to ``node``; ties broken by node index (paper:
        "breaking ties arbitrarily" — we pick deterministically)."""
        dists = self.distances_from(node)
        best: Node | None = None
        best_key: tuple[float, int] | None = None
        for c in candidates:
            key = (float(dists[self._index[c]]), self._index[c])
            if best_key is None or key < best_key:
                best, best_key = c, key
        if best is None:
            raise ValueError("candidates must be non-empty")
        return best

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SensorNetwork(n={self.n}, m={self._graph.number_of_edges()}, "
            f"positions={self._positions is not None})"
        )
