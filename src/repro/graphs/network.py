"""Weighted sensor-network model (paper §2.1).

A :class:`SensorNetwork` wraps a connected, weighted, undirected
:class:`networkx.Graph` and exposes the primitives every tracking
algorithm in this package relies on:

- shortest-path distances ``dist_G(u, v)`` (cached all-pairs matrix
  computed with :func:`scipy.sparse.csgraph.dijkstra`),
- the network diameter ``D``,
- ``k``-neighborhoods (all nodes within distance ``k``),
- deterministic integer indexing of nodes (node identifiers are sorted
  once; positional access is by :meth:`SensorNetwork.node_at`).

Edge weights are *distances* between adjacent sensors, not detection
rates (the paper is explicit about this distinction). Following §2.1 the
weights are normalized so the shortest edge has length 1; all cost-ratio
bounds are then independent of the deployment's physical scale.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Sequence

import networkx as nx
import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

Node = Hashable

__all__ = ["SensorNetwork", "Node"]


class SensorNetwork:
    """A static sensor network ``G = (V, E, w)``.

    Parameters
    ----------
    graph:
        Connected undirected graph. Edge attribute ``weight`` holds the
        inter-sensor distance; missing weights default to 1.0.
    positions:
        Optional mapping node -> (x, y) used by geometric constructions
        (Z-DAT zones) and plotting. Generators in
        :mod:`repro.graphs.generators` always provide positions.
    normalize:
        If true (default), rescale all weights so the minimum edge
        weight is exactly 1 (paper §2.1).
    distance_mode:
        ``"full"`` precomputes the all-pairs matrix (O(n²) memory,
        fastest repeated queries); ``"lazy"`` computes single-source
        rows on demand and caches them (scales to tens of thousands of
        sensors); ``"auto"`` (default) picks ``full`` up to
        :data:`LAZY_THRESHOLD` nodes. Components that genuinely need
        the whole matrix (doubling-dimension estimation, sparse covers)
        require ``full`` mode and say so.

    Raises
    ------
    ValueError
        If the graph is empty, disconnected, or has a non-positive
        edge weight.
    """

    #: "auto" switches from the precomputed matrix to lazy rows here
    LAZY_THRESHOLD = 2048

    def __init__(
        self,
        graph: nx.Graph,
        positions: dict[Node, tuple[float, float]] | None = None,
        normalize: bool = True,
        distance_mode: str = "auto",
    ) -> None:
        if distance_mode not in ("auto", "full", "lazy"):
            raise ValueError(f"unknown distance_mode {distance_mode!r}")
        if graph.number_of_nodes() == 0:
            raise ValueError("sensor network must have at least one node")
        if not nx.is_connected(graph):
            raise ValueError("sensor network must be connected (paper §2.1)")

        self._graph = graph.copy()
        for u, v, data in self._graph.edges(data=True):
            w = float(data.get("weight", 1.0))
            if w <= 0:
                raise ValueError(f"edge ({u!r}, {v!r}) has non-positive weight {w}")
            data["weight"] = w

        if normalize and self._graph.number_of_edges() > 0:
            min_w = min(d["weight"] for _, _, d in self._graph.edges(data=True))
            if min_w != 1.0:
                for _, _, d in self._graph.edges(data=True):
                    d["weight"] = d["weight"] / min_w

        # Deterministic node ordering: sort by (type name, repr) so mixed
        # id types (rare) still order stably, plain ints/strs sort naturally.
        try:
            self._nodes: list[Node] = sorted(self._graph.nodes())
        except TypeError:
            self._nodes = sorted(self._graph.nodes(), key=repr)
        self._index: dict[Node, int] = {v: i for i, v in enumerate(self._nodes)}

        self._positions = dict(positions) if positions else None
        if distance_mode == "auto":
            distance_mode = "full" if len(self._nodes) <= self.LAZY_THRESHOLD else "lazy"
        self._distance_mode = distance_mode
        self._dist: np.ndarray | None = None
        self._rows: dict[int, np.ndarray] = {}
        self._adj_csr: csr_matrix | None = None
        self._diameter: float | None = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        """The underlying (normalized) networkx graph."""
        return self._graph

    @property
    def n(self) -> int:
        """Number of sensor nodes ``n = |V|``."""
        return len(self._nodes)

    @property
    def nodes(self) -> Sequence[Node]:
        """All node identifiers in deterministic (sorted) order."""
        return tuple(self._nodes)

    def node_at(self, index: int) -> Node:
        """Node identifier at deterministic position ``index``."""
        return self._nodes[index]

    def index_of(self, node: Node) -> int:
        """Deterministic integer index of ``node`` (inverse of :meth:`node_at`)."""
        try:
            return self._index[node]
        except KeyError:
            raise KeyError(f"{node!r} is not a node of this network") from None

    def __contains__(self, node: Node) -> bool:
        return node in self._index

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def neighbors(self, node: Node) -> list[Node]:
        """Adjacent sensors of ``node`` (an object can move directly between them)."""
        return sorted(self._graph.neighbors(node), key=self.index_of)

    def degree(self, node: Node) -> int:
        """Number of adjacent sensors."""
        return self._graph.degree(node)

    def edge_weight(self, u: Node, v: Node) -> float:
        """Weight (distance) of edge ``(u, v)``."""
        return float(self._graph[u][v]["weight"])

    def position(self, node: Node) -> tuple[float, float]:
        """Geographic position of ``node``.

        Raises :class:`KeyError` when the network carries no positions.
        """
        if self._positions is None:
            raise KeyError("this network has no position information")
        return self._positions[node]

    @property
    def has_positions(self) -> bool:
        """Whether geographic positions are available for all nodes."""
        return self._positions is not None

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    @property
    def distance_mode(self) -> str:
        """``"full"`` (precomputed matrix) or ``"lazy"`` (rows on demand)."""
        return self._distance_mode

    def _adjacency(self) -> csr_matrix:
        if self._adj_csr is None:
            n = self.n
            rows: list[int] = []
            cols: list[int] = []
            vals: list[float] = []
            for u, v, data in self._graph.edges(data=True):
                i, j = self._index[u], self._index[v]
                rows.extend((i, j))
                cols.extend((j, i))
                vals.extend((data["weight"], data["weight"]))
            self._adj_csr = csr_matrix((vals, (rows, cols)), shape=(n, n))
        return self._adj_csr

    def _ensure_distances(self) -> np.ndarray:
        if self._dist is None:
            self._dist = dijkstra(self._adjacency(), directed=False)
        return self._dist

    @property
    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest-path distance matrix, indexed like :meth:`node_at`.

        Computed lazily once; O(n^2) memory. Unavailable in lazy
        distance mode — callers that need the whole matrix (doubling
        estimation, sparse covers) must construct the network with
        ``distance_mode="full"``.
        """
        if self._distance_mode == "lazy":
            raise RuntimeError(
                "distance_matrix is unavailable in lazy distance mode; "
                'construct the SensorNetwork with distance_mode="full"'
            )
        return self._ensure_distances()

    def distance(self, u: Node, v: Node) -> float:
        """Shortest-path distance ``dist_G(u, v)``."""
        return float(self.distances_from(u)[self._index[v]])

    def distances_from(self, u: Node) -> np.ndarray:
        """Vector of shortest-path distances from ``u`` to every node (by index).

        In lazy mode, rows are computed by single-source Dijkstra on
        first use and cached, so memory grows with the set of sources
        actually touched rather than n².
        """
        i = self._index[u]
        if self._distance_mode == "full" or self._dist is not None:
            return self._ensure_distances()[i]
        row = self._rows.get(i)
        if row is None:
            row = dijkstra(self._adjacency(), directed=False, indices=i)
            self._rows[i] = row
        return row

    @property
    def diameter(self) -> float:
        """Maximum shortest-path distance over all node pairs (``D``, §2.1).

        In lazy mode the exact diameter would need all-pairs work, so a
        standard double-sweep (2-approximation, exact on trees and very
        tight on grids/disks) is used instead.
        """
        if self._diameter is None:
            if self._distance_mode == "full":
                self._diameter = float(self._ensure_distances().max())
            else:
                row0 = self.distances_from(self._nodes[0])
                far = self._nodes[int(np.argmax(row0))]
                self._diameter = float(self.distances_from(far).max())
        return self._diameter

    def shortest_path(self, u: Node, v: Node) -> list[Node]:
        """One shortest path from ``u`` to ``v`` as a list of nodes."""
        return nx.shortest_path(self._graph, u, v, weight="weight")

    def k_neighborhood(self, node: Node, k: float) -> list[Node]:
        """All nodes within distance ``k`` of ``node``, including ``node`` (§2.1)."""
        dists = self.distances_from(node)
        hits = np.nonzero(dists <= k)[0]
        return [self._nodes[i] for i in hits]

    def closest(self, node: Node, candidates: Iterable[Node]) -> Node:
        """Candidate closest to ``node``; ties broken by node index (paper:
        "breaking ties arbitrarily" — we pick deterministically)."""
        dists = self.distances_from(node)
        best: Node | None = None
        best_key: tuple[float, int] | None = None
        for c in candidates:
            key = (float(dists[self._index[c]]), self._index[c])
            if best_key is None or key < best_key:
                best, best_key = c, key
        if best is None:
            raise ValueError("candidates must be non-empty")
        return best

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SensorNetwork(n={self.n}, m={self._graph.number_of_edges()}, "
            f"positions={self._positions is not None})"
        )
