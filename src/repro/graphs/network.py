"""Weighted sensor-network model (paper §2.1).

A :class:`SensorNetwork` wraps a connected, weighted, undirected
:class:`networkx.Graph` and exposes the primitives every tracking
algorithm in this package relies on:

- shortest-path distances ``dist_G(u, v)`` (cached all-pairs matrix
  computed with :func:`scipy.sparse.csgraph.dijkstra`),
- batched distance queries (:meth:`SensorNetwork.distances_to_many`,
  :meth:`SensorNetwork.pairwise_submatrix`,
  :meth:`SensorNetwork.pair_distances`,
  :meth:`SensorNetwork.consecutive_distances`) that resolve many
  sources in one Dijkstra call — the hot path of hierarchy
  construction and the trackers,
- the network diameter ``D`` (exact in full mode; an iterated
  double-sweep estimate with a certified 2-approximation upper bound
  in lazy mode — see :attr:`SensorNetwork.diameter_bounds`),
- ``k``-neighborhoods (all nodes within distance ``k``),
- an optional landmark-based *upper-bound* oracle
  (:meth:`SensorNetwork.distance_upper_bound`) for callers that can
  trade exactness for constant-time answers in lazy mode,
- deterministic integer indexing of nodes (node identifiers are sorted
  once; positional access is by :meth:`SensorNetwork.node_at`).

Lazy mode keeps single-source rows in a **bounded LRU**
(:attr:`SensorNetwork.lazy_cache_rows` rows, hit/miss/eviction counters
in :attr:`SensorNetwork.oracle_stats`), so long workloads on
10,000-node networks hold O(cache · n) memory instead of growing a row
per ever-touched source. Radius-limited queries (``limit=``) run a
pruned Dijkstra and bypass the cache — their rows are truncated at the
limit (``inf`` beyond it) and must never be mistaken for exact rows.

Edge weights are *distances* between adjacent sensors, not detection
rates (the paper is explicit about this distinction). Following §2.1 the
weights are normalized so the shortest edge has length 1; all cost-ratio
bounds are then independent of the deployment's physical scale.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterable, Iterator, Sequence

import networkx as nx
import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.perf import PERF

Node = Hashable

__all__ = ["SensorNetwork", "Node"]


class _RowLRU:
    """Bounded LRU of single-source distance rows, keyed by source index.

    A plain :class:`collections.OrderedDict` with move-to-end on hit and
    eviction of the least-recently-used row past ``capacity``. Counters
    are kept here so :attr:`SensorNetwork.oracle_stats` can report cache
    pressure without touching the global perf registry.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_rows")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("row cache capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._rows: OrderedDict[int, np.ndarray] = OrderedDict()

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, i: int) -> bool:
        return i in self._rows

    def get(self, i: int) -> np.ndarray | None:
        row = self._rows.get(i)
        if row is None:
            self.misses += 1
            return None
        self._rows.move_to_end(i)
        self.hits += 1
        return row

    def peek(self, i: int) -> np.ndarray | None:
        """Like :meth:`get` but without touching recency or counters."""
        return self._rows.get(i)

    def put(self, i: int, row: np.ndarray) -> None:
        if i in self._rows:
            self._rows.move_to_end(i)
            self._rows[i] = row
            return
        self._rows[i] = row
        if len(self._rows) > self.capacity:
            self._rows.popitem(last=False)
            self.evictions += 1


class SensorNetwork:
    """A static sensor network ``G = (V, E, w)``.

    Parameters
    ----------
    graph:
        Connected undirected graph. Edge attribute ``weight`` holds the
        inter-sensor distance; missing weights default to 1.0.
    positions:
        Optional mapping node -> (x, y) used by geometric constructions
        (Z-DAT zones) and plotting. Generators in
        :mod:`repro.graphs.generators` always provide positions.
    normalize:
        If true (default), rescale all weights so the minimum edge
        weight is exactly 1 (paper §2.1).
    distance_mode:
        ``"full"`` precomputes the all-pairs matrix (O(n²) memory,
        fastest repeated queries); ``"lazy"`` computes single-source
        rows on demand and keeps the most recent ones in a bounded LRU
        (scales to tens of thousands of sensors); ``"auto"`` (default)
        picks ``full`` up to :data:`LAZY_THRESHOLD` nodes. Components
        that genuinely need the whole matrix (doubling-dimension
        estimation, sparse covers) require ``full`` mode and say so.
    lazy_cache_rows:
        Capacity of the lazy-mode row cache (default
        :data:`LAZY_CACHE_ROWS`). Memory is ``capacity · n`` floats;
        ignored in full mode.

    Raises
    ------
    ValueError
        If the graph is empty, disconnected, or has a non-positive
        edge weight.
    """

    #: "auto" switches from the precomputed matrix to lazy rows here
    LAZY_THRESHOLD = 2048
    #: default lazy-mode row-cache capacity (rows of n floats each)
    LAZY_CACHE_ROWS = 256
    #: default landmark count for the upper-bound oracle
    DEFAULT_LANDMARKS = 16

    def __init__(
        self,
        graph: nx.Graph,
        positions: dict[Node, tuple[float, float]] | None = None,
        normalize: bool = True,
        distance_mode: str = "auto",
        lazy_cache_rows: int | None = None,
    ) -> None:
        if distance_mode not in ("auto", "full", "lazy"):
            raise ValueError(f"unknown distance_mode {distance_mode!r}")
        if graph.number_of_nodes() == 0:
            raise ValueError("sensor network must have at least one node")
        if not nx.is_connected(graph):
            raise ValueError("sensor network must be connected (paper §2.1)")

        self._graph = graph.copy()
        for u, v, data in self._graph.edges(data=True):
            w = float(data.get("weight", 1.0))
            if w <= 0:
                raise ValueError(f"edge ({u!r}, {v!r}) has non-positive weight {w}")
            data["weight"] = w

        if normalize and self._graph.number_of_edges() > 0:
            # function-level import: repro.core imports this module at
            # package init, so a top-level import would be circular
            from repro.core.costs import close_to

            min_w = min(d["weight"] for _, _, d in self._graph.edges(data=True))
            if not close_to(min_w, 1.0):
                for _, _, d in self._graph.edges(data=True):
                    d["weight"] = d["weight"] / min_w

        # Deterministic node ordering: sort by (type name, repr) so mixed
        # id types (rare) still order stably, plain ints/strs sort naturally.
        try:
            self._nodes: list[Node] = sorted(self._graph.nodes())
        except TypeError:
            self._nodes = sorted(self._graph.nodes(), key=repr)
        self._index: dict[Node, int] = {v: i for i, v in enumerate(self._nodes)}
        self._all_idx = list(range(len(self._nodes)))

        self._positions = dict(positions) if positions else None
        if distance_mode == "auto":
            distance_mode = "full" if len(self._nodes) <= self.LAZY_THRESHOLD else "lazy"
        self._distance_mode = distance_mode
        self._dist: np.ndarray | None = None
        self._rows = _RowLRU(
            self.LAZY_CACHE_ROWS if lazy_cache_rows is None else lazy_cache_rows
        )
        self._adj_csr: csr_matrix | None = None
        self._diameter: float | None = None
        self._diameter_upper: float | None = None
        self._rows_computed = 0
        self._limited_sssp = 0
        self._batched_calls = 0
        self._landmark_idx: np.ndarray | None = None
        self._landmark_rows: np.ndarray | None = None

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.Graph:
        """The underlying (normalized) networkx graph."""
        return self._graph

    @property
    def n(self) -> int:
        """Number of sensor nodes ``n = |V|``."""
        return len(self._nodes)

    @property
    def nodes(self) -> Sequence[Node]:
        """All node identifiers in deterministic (sorted) order."""
        return tuple(self._nodes)

    def node_at(self, index: int) -> Node:
        """Node identifier at deterministic position ``index``."""
        return self._nodes[index]

    def index_of(self, node: Node) -> int:
        """Deterministic integer index of ``node`` (inverse of :meth:`node_at`)."""
        try:
            return self._index[node]
        except KeyError:
            raise KeyError(f"{node!r} is not a node of this network") from None

    def __contains__(self, node: Node) -> bool:
        return node in self._index

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def neighbors(self, node: Node) -> list[Node]:
        """Adjacent sensors of ``node`` (an object can move directly between them)."""
        return sorted(self._graph.neighbors(node), key=self.index_of)

    def degree(self, node: Node) -> int:
        """Number of adjacent sensors."""
        return self._graph.degree(node)

    def edge_weight(self, u: Node, v: Node) -> float:
        """Weight (distance) of edge ``(u, v)``."""
        return float(self._graph[u][v]["weight"])

    def position(self, node: Node) -> tuple[float, float]:
        """Geographic position of ``node``.

        Raises :class:`KeyError` when the network carries no positions.
        """
        if self._positions is None:
            raise KeyError("this network has no position information")
        return self._positions[node]

    @property
    def has_positions(self) -> bool:
        """Whether geographic positions are available for all nodes."""
        return self._positions is not None

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    @property
    def distance_mode(self) -> str:
        """``"full"`` (precomputed matrix) or ``"lazy"`` (rows on demand)."""
        return self._distance_mode

    def _adjacency(self) -> csr_matrix:
        if self._adj_csr is None:
            n = self.n
            rows: list[int] = []
            cols: list[int] = []
            vals: list[float] = []
            for u, v, data in self._graph.edges(data=True):
                i, j = self._index[u], self._index[v]
                rows.extend((i, j))
                cols.extend((j, i))
                vals.extend((data["weight"], data["weight"]))
            self._adj_csr = csr_matrix((vals, (rows, cols)), shape=(n, n))
        return self._adj_csr

    def _ensure_distances(self) -> np.ndarray:
        if self._dist is None:
            with PERF.timer("oracle.full_matrix"):
                self._dist = dijkstra(self._adjacency(), directed=False)
        return self._dist

    @property
    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest-path distance matrix, indexed like :meth:`node_at`.

        Computed lazily once; O(n^2) memory. Unavailable in lazy
        distance mode — callers that need the whole matrix (doubling
        estimation, sparse covers) must construct the network with
        ``distance_mode="full"``.
        """
        if self._distance_mode == "lazy":
            raise RuntimeError(
                "distance_matrix is unavailable in lazy distance mode; "
                'construct the SensorNetwork with distance_mode="full"'
            )
        return self._ensure_distances()

    def _sssp(
        self, indices: int | Sequence[int] | np.ndarray, limit: float | None = None
    ) -> np.ndarray:
        """Raw (possibly multi-source-batched, possibly pruned) Dijkstra."""
        kwargs = {} if limit is None else {"limit": float(limit)}
        out = dijkstra(self._adjacency(), directed=False, indices=indices, **kwargs)
        k = 1 if np.ndim(indices) == 0 else len(indices)
        if limit is None:
            self._rows_computed += k
            PERF.incr("oracle.rows_computed", k)
        else:
            self._limited_sssp += k
            PERF.incr("oracle.limited_sssp", k)
        return out

    def distance(self, u: Node, v: Node) -> float:
        """Shortest-path distance ``dist_G(u, v)``.

        Full mode reads the matrix. Lazy mode reuses a cached row of
        either endpoint when one exists; for *adjacent* ``u, v`` with no
        cached row it runs a Dijkstra pruned at the connecting edge's
        weight (exact, touches only a small ball) instead of computing
        and caching a full row for a throwaway pair.
        """
        i = self._index[u]
        if self._distance_mode == "full" or self._dist is not None:
            return float(self._ensure_distances()[i, self._index[v]])
        j = self._index[v]
        if i == j:
            return 0.0
        row = self._rows.get(i)
        if row is not None:
            return float(row[j])
        row = self._rows.get(j)
        if row is not None:
            return float(row[i])
        if self._graph.has_edge(u, v):
            w = float(self._graph[u][v]["weight"])
            return float(self._sssp(i, limit=w)[j])
        return float(self.distances_from(u)[j])

    def distances_from(self, u: Node) -> np.ndarray:
        """Vector of shortest-path distances from ``u`` to every node (by index).

        In lazy mode, rows are computed by single-source Dijkstra on
        first use and kept in a bounded LRU (capacity
        ``lazy_cache_rows``), so memory stays ``O(cache · n)`` no matter
        how many distinct sources a long workload touches.
        """
        i = self._index[u]
        if self._distance_mode == "full" or self._dist is not None:
            return self._ensure_distances()[i]
        row = self._rows.get(i)
        if row is None:
            row = self._sssp(i)
            self._rows.put(i, row)
        return row

    def distances_to_many(
        self,
        sources: Sequence[Node],
        targets: Sequence[Node] | None = None,
        limit: float | None = None,
    ) -> np.ndarray:
        """Batched distances: one row per source, one column per target.

        The workhorse of hierarchy construction: all uncached source
        rows are resolved in a **single** Dijkstra call instead of one
        scipy call per source. Returns a dense
        ``(len(sources), len(targets))`` array (``targets=None`` means
        every node, matrix-indexed) — callers iterating large source
        sets should chunk to bound the transient allocation.

        With ``limit``, the search is pruned at distance ``limit``
        (entries ≤ ``limit`` are exact, ``inf`` beyond — scipy's
        inclusive semantics) and the truncated rows bypass the row
        cache; cached exact rows are still reused. Full mode always
        returns exact values, even past ``limit``.
        """
        src_idx = [self._index[u] for u in sources]
        tgt_idx = None if targets is None else [self._index[v] for v in targets]
        if tgt_idx is not None and len(tgt_idx) == self.n and tgt_idx == self._all_idx:
            tgt_idx = None  # identity column selection — row copies suffice
        self._batched_calls += 1
        PERF.incr("oracle.batched_calls")
        if self._distance_mode == "full" or self._dist is not None:
            M = self._ensure_distances()
            if tgt_idx is None:
                return M[src_idx]
            # one fancy-indexed copy of exactly the requested block — an
            # intermediate M[src_idx] would copy all n columns first
            return M[np.asarray(src_idx)[:, None], np.asarray(tgt_idx)]
        rows: dict[int, np.ndarray] = {}
        missing: list[int] = []
        seen: set[int] = set()
        for i in src_idx:
            if i in rows:
                continue
            cached = self._rows.get(i)
            if cached is not None:
                rows[i] = cached
            elif i not in seen:
                missing.append(i)
                seen.add(i)
        if missing:
            computed = self._sssp(np.asarray(missing), limit=limit)
            for k, i in enumerate(missing):
                rows[i] = computed[k]
                if limit is None:
                    self._rows.put(i, computed[k])
        block = np.vstack([rows[i] for i in src_idx]) if src_idx else np.empty((0, self.n))
        return block if tgt_idx is None else block[:, tgt_idx]

    def pairwise_submatrix(
        self, nodes: Sequence[Node], limit: float | None = None
    ) -> np.ndarray:
        """Distances among a node subset, ``out[a, b] = dist(nodes[a], nodes[b])``."""
        return self.distances_to_many(nodes, nodes, limit=limit)

    def pair_distances(self, pairs: Sequence[tuple[Node, Node]]) -> np.ndarray:
        """``[dist(u, v) for u, v in pairs]`` resolved in one batched call.

        The batched replacement for per-pair :meth:`distance` loops
        (lint rule RPL001): unique first elements become Dijkstra
        sources, unique second elements become target columns, so ``k``
        pairs cost one multi-source solve over the distinct sources
        instead of up to ``k`` independent row computations. Duplicate
        pairs and repeated endpoints are free.
        """
        if not pairs:
            return np.empty(0)
        srcs = list(dict.fromkeys(u for u, _ in pairs))
        tgts = list(dict.fromkeys(v for _, v in pairs))
        spos = {u: k for k, u in enumerate(srcs)}
        tpos = {v: k for k, v in enumerate(tgts)}
        block = self.distances_to_many(srcs, tgts)
        a = np.asarray([spos[u] for u, _ in pairs])
        b = np.asarray([tpos[v] for _, v in pairs])
        return block[a, b]

    def consecutive_distances(self, seq: Sequence[Node]) -> np.ndarray:
        """``[dist(seq[0], seq[1]), dist(seq[1], seq[2]), ...]`` in one batch.

        The distance profile of a message's physical visit sequence
        (detection paths, spine walks). Delegates to
        :meth:`pair_distances` over the consecutive pairs, so all unique
        sources resolve in a single batched call; duplicates in ``seq``
        are free.
        """
        if len(seq) < 2:
            return np.empty(0)
        return self.pair_distances(list(zip(seq[:-1], seq[1:], strict=True)))

    def path_length(self, seq: Sequence[Node]) -> float:
        """Total length of the visit sequence ``seq`` (sum of hops)."""
        return float(self.consecutive_distances(seq).sum())

    @property
    def diameter(self) -> float:
        """Maximum shortest-path distance over all node pairs (``D``, §2.1).

        Full mode is exact. Lazy mode iterates the double sweep to a
        fixed point: sweep from the farthest node found so far until the
        eccentricity stops growing (exact on trees, empirically exact on
        grids/disks, never more than a factor 2 below ``D`` in general
        — see :attr:`diameter_bounds` for the certified bracket).
        """
        if self._diameter is None:
            if self._distance_mode == "full":
                self._diameter = float(self._ensure_distances().max())
                self._diameter_upper = self._diameter
            else:
                # iterated double sweep: each hop moves to the farthest
                # node seen; eccentricities are non-decreasing along the
                # walk, so the first non-improving sweep is a fixed point.
                cur = self._nodes[0]
                best = -1.0
                for _ in range(max(2, int(np.ceil(np.log2(self.n + 1))) + 2)):
                    row = self.distances_from(cur)
                    far_i = int(np.argmax(row))
                    ecc = float(row[far_i])
                    if ecc <= best:
                        break
                    best = ecc
                    cur = self._nodes[far_i]
                self._diameter = best
                # any eccentricity e satisfies D <= 2e (triangle inequality)
                self._diameter_upper = 2.0 * best
        return self._diameter

    @property
    def diameter_bounds(self) -> tuple[float, float]:
        """Certified ``(lower, upper)`` bracket on the true diameter.

        Full mode returns ``(D, D)``. Lazy mode returns the iterated
        double-sweep estimate and twice it: every sweep value is a real
        eccentricity ``e``, and ``D ≤ 2e`` by the triangle inequality.
        Anything sizing level counts or search radii off the diameter
        must use the **upper** bound — the estimate itself can
        under-shoot (that truncated ``build_levels`` hierarchies before
        this bracket existed).
        """
        d = self.diameter
        assert self._diameter_upper is not None
        return d, self._diameter_upper

    def shortest_path(self, u: Node, v: Node) -> list[Node]:
        """One shortest path from ``u`` to ``v`` as a list of nodes."""
        return nx.shortest_path(self._graph, u, v, weight="weight")

    def k_neighborhood(self, node: Node, k: float) -> list[Node]:
        """All nodes within distance ``k`` of ``node``, including ``node`` (§2.1).

        In lazy mode (with no cached row for ``node``) this runs a
        Dijkstra pruned at ``k`` — it only explores the ball it reports,
        which on big networks is far cheaper than a full row.
        """
        i = self._index[node]
        if self._distance_mode == "full" or self._dist is not None:
            dists = self._ensure_distances()[i]
        else:
            dists = self._rows.peek(i)
            if dists is None:
                dists = self._sssp(i, limit=k)
        hits = np.nonzero(dists <= k)[0]
        return [self._nodes[i] for i in hits]

    # ------------------------------------------------------------------
    # landmark upper-bound oracle (lazy-mode helper)
    # ------------------------------------------------------------------
    def build_landmarks(self, k: int | None = None) -> tuple[Node, ...]:
        """Pick ``k`` landmarks by farthest-point traversal and pin their rows.

        Landmark rows live outside the LRU (they are pinned), costing
        ``k · n`` floats. Deterministic: starts from node 0 and greedily
        maximizes the distance to the chosen set, ties by node index.
        """
        k = min(k or self.DEFAULT_LANDMARKS, self.n)
        chosen = [0]
        rows = [np.asarray(self._sssp(0) if self._dist is None else self._ensure_distances()[0])]
        while len(chosen) < k:
            mindist = np.minimum.reduce(rows)
            nxt = int(np.argmax(mindist))
            if mindist[nxt] <= 0:  # every node already a landmark
                break
            chosen.append(nxt)
            rows.append(
                np.asarray(
                    self._sssp(nxt) if self._dist is None else self._ensure_distances()[nxt]
                )
            )
        self._landmark_idx = np.asarray(chosen)
        self._landmark_rows = np.vstack(rows)
        return tuple(self._nodes[i] for i in chosen)

    def distance_upper_bound(self, u: Node, v: Node) -> float:
        """An upper bound on ``dist_G(u, v)`` that never runs a new Dijkstra.

        Exact whenever it can be for free (full mode, identical
        endpoints, or a cached lazy row for either endpoint); otherwise
        the landmark bound ``min_L d(u, L) + d(L, v)`` — admissible by
        the triangle inequality. Landmarks are built on first use
        (:meth:`build_landmarks` tunes ``k``). Intended for callers that
        can act on a safe over-estimate (search-radius sizing, candidate
        pruning) without forcing exact work on the 10k-node hot path.
        """
        i, j = self._index[u], self._index[v]
        if i == j:
            return 0.0
        if self._distance_mode == "full" or self._dist is not None:
            return float(self._ensure_distances()[i, j])
        row = self._rows.peek(i)
        if row is None:
            row = self._rows.peek(j)
            if row is not None:
                i = j  # use v's row symmetrically
                j = self._index[u]
        if row is not None:
            return float(row[j])
        if self._landmark_rows is None:
            self.build_landmarks()
        assert self._landmark_rows is not None
        PERF.incr("oracle.landmark_ub")
        return float(np.min(self._landmark_rows[:, i] + self._landmark_rows[:, j]))

    @property
    def oracle_stats(self) -> dict[str, int | str | float]:
        """Counters describing distance-oracle pressure on this network.

        ``row_cache_*`` report the lazy LRU (hits/misses include every
        row lookup, batched or not); ``rows_computed`` counts exact
        single-source Dijkstra solves, ``limited_sssp`` radius-pruned
        ones, ``batched_calls`` invocations of the batched API.
        """
        return {
            "mode": self._distance_mode,
            "n": self.n,
            "row_cache_capacity": self._rows.capacity,
            "row_cache_size": len(self._rows),
            "row_cache_hits": self._rows.hits,
            "row_cache_misses": self._rows.misses,
            "row_cache_evictions": self._rows.evictions,
            "rows_computed": self._rows_computed,
            "limited_sssp": self._limited_sssp,
            "batched_calls": self._batched_calls,
            "landmarks": 0 if self._landmark_idx is None else int(self._landmark_idx.size),
        }

    def closest(self, node: Node, candidates: Iterable[Node]) -> Node:
        """Candidate closest to ``node``; ties broken by node index (paper:
        "breaking ties arbitrarily" — we pick deterministically)."""
        dists = self.distances_from(node)
        best: Node | None = None
        best_key: tuple[float, int] | None = None
        for c in candidates:
            key = (float(dists[self._index[c]]), self._index[c])
            if best_key is None or key < best_key:
                best, best_key = c, key
        if best is None:
            raise ValueError("candidates must be non-empty")
        return best

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SensorNetwork(n={self.n}, m={self._graph.number_of_edges()}, "
            f"positions={self._positions is not None})"
        )
