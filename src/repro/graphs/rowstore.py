"""Fingerprinted memmap storage for shared all-pairs distance matrices.

:class:`MemmapRowStore` is the disk/shared-memory half of the
``"memmap"`` distance backend: the n×n float64 matrix lives in one file
that any number of consumers — other :class:`SensorNetwork` instances,
serve shards, worker processes — map read-only and share through the OS
page cache, instead of each holding a private O(n²) copy.

A JSON sidecar (``<path>.meta.json``) records a structural fingerprint
of the weighted graph — ``(n, edge count, sha256 of the CSR arrays)``,
see :meth:`repro.graphs.backends.SsspEngine.fingerprint` — so attaching
to a stale file left behind by a *different* graph (even one with the
same node/edge counts) is detected and the matrix is recomputed in
place. When no path is given, a deterministic per-fingerprint file
under a **per-user** cache directory (``$XDG_CACHE_HOME/repro`` or
``~/.cache/repro``; a uid-suffixed temp directory when no home
resolves) is used, which is what lets two independently constructed
networks over the same graph find each other's matrix with zero
coordination — without parking predictable filenames in the
world-writable system temp dir where another local user could plant
them.
"""

from __future__ import annotations

import json
import os
import tempfile

import numpy as np

__all__ = ["MemmapRowStore"]

Fingerprint = tuple[int, int, str]


def _default_store_dir() -> str:
    """Per-user directory for defaulted store paths (never shared tmp)."""
    env = os.environ.get("XDG_CACHE_HOME")
    if env:
        return os.path.join(env, "repro")
    home = os.path.expanduser("~")
    if home and not home.startswith("~"):
        return os.path.join(home, ".cache", "repro")
    uid = getattr(os, "getuid", lambda: "user")()
    return os.path.join(tempfile.gettempdir(), f"repro-{uid}")


class MemmapRowStore:
    """One on-disk all-pairs matrix, guarded by a graph fingerprint."""

    def __init__(self, path: str | None, fingerprint: Fingerprint) -> None:
        self._fingerprint = fingerprint
        self._n = int(fingerprint[0])
        if path is None:
            path = os.path.join(
                _default_store_dir(), f"repro-dist-{fingerprint[2][:16]}.f64"
            )
        self.path = path

    @property
    def meta_path(self) -> str:
        """Path of the JSON fingerprint sidecar."""
        return self.path + ".meta.json"

    def _meta_matches(self) -> bool:
        try:
            with open(self.meta_path, "r", encoding="utf-8") as fh:
                meta = json.load(fh)
        except (OSError, ValueError):
            return False
        return (
            meta.get("n") == self._fingerprint[0]
            and meta.get("nnz") == self._fingerprint[1]
            and meta.get("digest") == self._fingerprint[2]
        )

    def attach(self) -> np.ndarray | None:
        """Map an existing matrix read-only, or ``None`` when absent/stale.

        Attaching never computes anything: the sidecar fingerprint and
        the file size must both match this store's graph.
        """
        expected = self._n * self._n * 8
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return None
        if size != expected or not self._meta_matches():
            return None
        return np.memmap(self.path, dtype=np.float64, mode="r", shape=(self._n, self._n))

    def create(self, matrix: np.ndarray) -> np.ndarray:
        """Write ``matrix`` to the store and return a read-only mapping.

        The write goes to a temporary sibling file that is atomically
        renamed into place, so a concurrent consumer either attaches the
        complete old file or the complete new one — never a torn write.
        The sidecar is written after the rename; attachers require both.
        """
        if matrix.shape != (self._n, self._n):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match fingerprint n={self._n}"
            )
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".f64.tmp")
        os.close(fd)
        try:
            mm = np.memmap(tmp, dtype=np.float64, mode="r+", shape=(self._n, self._n))
            mm[:] = matrix
            mm.flush()
            del mm
            os.replace(tmp, self.path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        with open(self.meta_path, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "n": self._fingerprint[0],
                    "nnz": self._fingerprint[1],
                    "digest": self._fingerprint[2],
                },
                fh,
            )
        attached = self.attach()
        assert attached is not None
        return attached
