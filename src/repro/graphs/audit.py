"""The ``repro audit-backend`` gate: exactness and admissibility checks.

Same pattern as the serve consistency audit (PR 4) and the trace
determinism gate (PR 5): an executable contract, run on small graphs
where a dense reference solve is affordable, wired into CI so a backend
regression fails a build instead of silently corrupting cost ledgers.

Checks per graph (a grid and a random geometric network by default):

- **exact parity** — the ``full``, ``lazy`` and ``memmap`` backends
  answer every pair *bit-for-bit* equal to an independent dense
  reference Dijkstra (``np.array_equal``, no tolerance: these backends
  run the same scipy solver over the same CSR, so even the float noise
  must match the seed oracle);
- **landmark admissibility** — every unlimited landmark answer is an
  upper bound on the true distance (≥ exact − 1e-9), diagonals are 0,
  and answers within the exactness budget are exactly the reference;
- **limited-query exactness** — radius-limited queries are exact under
  every backend, including a landmark backend whose budget is spent;
- **k-neighborhood agreement** — all backends report the same ball
  membership (the boundary-node tolerance fix applies uniformly);
- **diameter bracket** — ``diameter_bounds`` contains the true
  diameter under every backend.

:func:`run_backend_audit` returns a JSON-ready report whose ``ok``
gates the CLI exit code.
"""

from __future__ import annotations

import os
import tempfile
from typing import Sequence

import numpy as np

from repro.graphs.backends import BACKEND_NAMES
from repro.graphs.generators import grid_network, random_geometric_network
from repro.graphs.network import SensorNetwork

__all__ = ["run_backend_audit"]

#: admissibility slack: float noise only, far below any real distance gap
_EPS = 1e-9


def _reference_matrix(net: SensorNetwork) -> np.ndarray:
    """An independent dense solve (the seed oracle's full mode)."""
    ref = SensorNetwork(net.graph, normalize=False, distance_backend="full")
    return np.asarray(ref.distance_matrix)


def _sample_pairs(n: int, count: int, seed: int) -> list[tuple[int, int]]:
    rng = np.random.default_rng(seed)
    return [
        (int(rng.integers(n)), int(rng.integers(n))) for _ in range(count)
    ] + [(0, 0), (0, n - 1)]


def _audit_one_graph(
    label: str,
    base: SensorNetwork,
    seed: int,
    num_landmarks: int,
    exact_budget: int,
) -> list[dict[str, object]]:
    checks: list[dict[str, object]] = []
    ref = _reference_matrix(base)
    n = ref.shape[0]
    pairs = _sample_pairs(n, 64, seed)
    sources = sorted({i for i, _ in pairs})

    def record(name: str, ok: bool, detail: str) -> None:
        checks.append(
            {"graph": label, "check": name, "ok": bool(ok), "detail": detail}
        )

    # -- exact backends must agree bit-for-bit with the reference ------
    with tempfile.TemporaryDirectory() as tmp:
        for name in ("full", "lazy", "memmap"):
            options: dict[str, object] = (
                {"path": os.path.join(tmp, f"{label}.f64")} if name == "memmap" else {}
            )
            net = SensorNetwork(
                base.graph, normalize=False, distance_backend=name,
                backend_options=options,
            )
            block = np.asarray(net.distances_to_many([net.node_at(i) for i in sources]))
            exact_rows = bool(np.array_equal(block, ref[sources]))
            got = net.pair_distances(
                [(net.node_at(i), net.node_at(j)) for i, j in pairs]
            )
            want = np.array([ref[i, j] for i, j in pairs])
            exact_pairs = bool(np.array_equal(np.asarray(got), want))
            record(
                f"{name}_bit_for_bit",
                exact_rows and exact_pairs,
                f"{len(sources)} rows and {len(pairs)} pairs vs dense reference",
            )
            mat_flag = bool(net.oracle_stats["matrix_materialized"])
            record(
                f"{name}_matrix_flag",
                mat_flag == (name in ("full", "memmap")),
                f"matrix_materialized={mat_flag}",
            )

    # -- landmark backend: admissible, budget-exact, limited-exact -----
    lm = SensorNetwork(
        base.graph, normalize=False, distance_backend="landmark",
        backend_options={"num_landmarks": num_landmarks, "exact_budget": exact_budget},
    )
    budget_rows = [lm.distances_from(lm.node_at(i)) for i in sources[:exact_budget]]
    budget_exact = all(
        np.array_equal(np.asarray(row), ref[i])
        for i, row in zip(sources[:exact_budget], budget_rows)
    )
    record(
        "landmark_budget_exact",
        budget_exact,
        f"first {len(budget_rows)} row queries spend the exactness budget",
    )

    admissible = True
    diag_zero = True
    for i in range(n):
        row = np.asarray(lm.distances_from(lm.node_at(i)))
        admissible = admissible and bool(np.all(row >= ref[i] - _EPS))
        diag_zero = diag_zero and bool(abs(float(row[i])) <= _EPS)
    record(
        "landmark_rows_admissible",
        admissible and diag_zero,
        f"all {n} upper-bound rows >= exact, zero diagonal "
        f"(budget remaining: {lm.oracle_stats['exact_budget_remaining']})",
    )

    got = np.asarray(
        lm.pair_distances([(lm.node_at(i), lm.node_at(j)) for i, j in pairs])
    )
    want = np.array([ref[i, j] for i, j in pairs])
    record(
        "landmark_pairs_admissible",
        bool(np.all(got >= want - _EPS)),
        f"{len(pairs)} pair bounds >= exact",
    )

    limit = float(np.median(ref[ref > 0])) if np.any(ref > 0) else 1.0
    sub = np.asarray(
        lm.distances_to_many([lm.node_at(i) for i in sources], limit=limit)
    )
    limited_ok = True
    for row, i in zip(sub, sources):
        if np.array_equal(row, ref[i]):
            continue  # served from a cached exact row — fully exact
        within = ref[i] <= limit
        limited_ok = limited_ok and bool(
            np.allclose(row[within], ref[i][within]) and np.all(np.isinf(row[~within]))
        )
    record(
        "landmark_limited_exact",
        limited_ok,
        f"pruned queries at limit={limit:.3g} exact past the spent budget",
    )

    # -- k-neighborhood and diameter agreement across backends ---------
    probe = base.node_at(0)
    radius = max(2.0, limit / 2.0)
    reference_ball = None
    ball_ok = True
    diam_ok = True
    true_d = float(ref.max())
    with tempfile.TemporaryDirectory() as tmp:
        for name in BACKEND_NAMES:
            options = (
                {"path": os.path.join(tmp, f"{label}-ball.f64")}
                if name == "memmap"
                else {}
            )
            net = SensorNetwork(
                base.graph, normalize=False, distance_backend=name,
                backend_options=options,
            )
            ball = net.k_neighborhood(probe, radius)
            if reference_ball is None:
                reference_ball = ball
            ball_ok = ball_ok and ball == reference_ball
            lo, hi = net.diameter_bounds
            diam_ok = diam_ok and (lo <= true_d + _EPS <= hi + _EPS)
    record(
        "k_neighborhood_agreement",
        ball_ok,
        f"ball(node 0, {radius:.3g}) identical under {', '.join(BACKEND_NAMES)}",
    )
    record(
        "diameter_bracket",
        diam_ok,
        f"diameter_bounds contains D={true_d:.6g} under every backend",
    )
    return checks


def run_backend_audit(
    side: int = 6,
    geometric_nodes: int = 48,
    seed: int = 1,
    num_landmarks: int = 8,
    exact_budget: int = 4,
    graphs: Sequence[str] = ("grid", "geometric"),
) -> dict[str, object]:
    """Run every backend check on small graphs; ``report["ok"]`` gates CI."""
    checks: list[dict[str, object]] = []
    if "grid" in graphs:
        checks += _audit_one_graph(
            f"grid-{side}x{side}",
            grid_network(side, side),
            seed,
            num_landmarks,
            exact_budget,
        )
    if "geometric" in graphs:
        checks += _audit_one_graph(
            f"geometric-{geometric_nodes}",
            random_geometric_network(geometric_nodes, seed=seed),
            seed,
            num_landmarks,
            exact_budget,
        )
    failed = [c for c in checks if not c["ok"]]
    return {
        "audit": "backend",
        "config": {
            "side": side,
            "geometric_nodes": geometric_nodes,
            "seed": seed,
            "num_landmarks": num_landmarks,
            "exact_budget": exact_budget,
        },
        "checks": checks,
        "failed": len(failed),
        "ok": not failed,
    }
