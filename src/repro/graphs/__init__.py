"""Sensor-network graph substrate: model, topology generators, doubling dimension."""

from repro.graphs.network import SensorNetwork
from repro.graphs.generators import (
    grid_network,
    ring_network,
    line_network,
    star_network,
    random_geometric_network,
    erdos_renyi_network,
    random_tree_network,
    paper_grid_sizes,
)
from repro.graphs.doubling import estimate_doubling_dimension

__all__ = [
    "SensorNetwork",
    "grid_network",
    "ring_network",
    "line_network",
    "star_network",
    "random_geometric_network",
    "erdos_renyi_network",
    "random_tree_network",
    "paper_grid_sizes",
    "estimate_doubling_dimension",
]
