"""Sensor-network graph substrate: model, distance backends, generators, doubling."""

from repro.graphs.backends import (
    BACKEND_NAMES,
    DistanceBackend,
    FullMatrixBackend,
    LandmarkBackend,
    LazyLRUBackend,
    MemmapFullBackend,
    make_backend,
    register_backend,
)
from repro.graphs.network import SensorNetwork
from repro.graphs.rowstore import MemmapRowStore
from repro.graphs.generators import (
    grid_network,
    ring_network,
    line_network,
    star_network,
    random_geometric_network,
    erdos_renyi_network,
    random_tree_network,
    paper_grid_sizes,
)
from repro.graphs.doubling import estimate_doubling_dimension

__all__ = [
    "SensorNetwork",
    "DistanceBackend",
    "FullMatrixBackend",
    "LazyLRUBackend",
    "LandmarkBackend",
    "MemmapFullBackend",
    "MemmapRowStore",
    "BACKEND_NAMES",
    "make_backend",
    "register_backend",
    "grid_network",
    "ring_network",
    "line_network",
    "star_network",
    "random_geometric_network",
    "erdos_renyi_network",
    "random_tree_network",
    "paper_grid_sizes",
    "estimate_doubling_dimension",
]
