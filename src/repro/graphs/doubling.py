"""Doubling-dimension estimation (paper §2.2, footnote 1).

A metric has doubling dimension ρ if every ball of radius δ can be
covered by at most ``2^ρ`` balls of radius δ/2. Grids and unit-disk
deployments have small constant ρ (≈ 2 in the plane); rings have ρ = 1;
stars and expanders do not.

The estimator below greedily covers sampled balls with half-radius balls
and reports ``log2`` of the worst cover size seen. Greedy covering is a
standard constant-factor over-approximation, which is what MOT's
configuration needs (ρ only feeds additive constants).
"""

from __future__ import annotations

import math

import numpy as np

from repro.graphs.network import SensorNetwork

__all__ = ["estimate_doubling_dimension", "greedy_half_radius_cover"]


def greedy_half_radius_cover(
    net: SensorNetwork, center_index: int, radius: float
) -> int:
    """Number of radius/2 balls a greedy cover uses for ``B(center, radius)``.

    Centers are chosen farthest-point-first from inside the ball, which
    gives a cover at most a constant factor larger than optimal.
    """
    d = net.distance_matrix
    ball = np.nonzero(d[center_index] <= radius)[0]
    if ball.size == 0:
        return 0
    uncovered = set(ball.tolist())
    count = 0
    # farthest-point-first: always pick the uncovered point farthest from
    # the already chosen centers (first pick: the original center itself).
    chosen: list[int] = []
    while uncovered:
        if not chosen:
            pick = center_index if center_index in uncovered else next(iter(uncovered))
        else:
            rows = d[np.asarray(chosen)][:, np.asarray(sorted(uncovered))]
            mins = rows.min(axis=0)
            pick = sorted(uncovered)[int(np.argmax(mins))]
        chosen.append(pick)
        count += 1
        newly = np.nonzero(d[pick] <= radius / 2.0)[0]
        uncovered.difference_update(newly.tolist())
    return count


def estimate_doubling_dimension(
    net: SensorNetwork,
    samples: int = 16,
    radii: int = 4,
    seed: int = 0,
) -> float:
    """Estimate the doubling dimension ρ of the network metric.

    Samples ``samples`` ball centers and ``radii`` radii spread
    geometrically between the minimum edge weight and the diameter, and
    returns ``max log2(cover size)`` over all sampled balls.

    The estimate over-approximates ρ by at most a small constant factor
    (greedy covering); it is intended to configure MOT's
    ``special_parent_gap`` and to sanity-check that a topology is
    constant-doubling, not to be metrically exact.
    """
    if net.n == 1:
        return 0.0
    rng = np.random.default_rng(seed)
    centers = rng.choice(net.n, size=min(samples, net.n), replace=False)
    diam = net.diameter
    if diam <= 0:
        return 0.0
    rs = [diam / (2.0**k) for k in range(radii)]
    worst = 1
    for c in centers:
        for r in rs:
            if r < 1.0:
                continue
            worst = max(worst, greedy_half_radius_cover(net, int(c), r))
    return math.log2(worst) if worst > 0 else 0.0
