"""Topology generators for the paper's evaluation and beyond.

The paper's experiments (§8) run on square/rectangular **grid networks**
from 10 to 1024 nodes. Grids with unit edge weights are constant-doubling
(doubling dimension ≈ 2), the model under which MOT's strongest bounds
hold. We also provide:

- **ring networks** — the paper's §1.3 example where spanning-tree-based
  baselines degrade to Θ(D) cost ratios,
- **random geometric (unit-disk) networks** — the standard sensor
  deployment model, also constant-doubling,
- **Erdős–Rényi** and **random tree** networks — "general graphs" for the
  §6 extensions,
- **line** and **star** networks — degenerate shapes used in tests.

Every generator returns a :class:`~repro.graphs.network.SensorNetwork`
with geographic positions attached (needed by Z-DAT's zone division).
"""

from __future__ import annotations

import math

import networkx as nx
import numpy as np

from repro.graphs.network import SensorNetwork

__all__ = [
    "grid_network",
    "ring_network",
    "line_network",
    "star_network",
    "random_geometric_network",
    "erdos_renyi_network",
    "random_tree_network",
    "paper_grid_sizes",
]


def grid_network(rows: int, cols: int, diagonal: bool = False) -> SensorNetwork:
    """A ``rows × cols`` grid of sensors with unit-length edges.

    Node ids are integers ``r * cols + c`` laid out row-major; positions
    are the lattice coordinates ``(c, r)``. With ``diagonal=True`` the
    eight-neighborhood is used and diagonal edges get weight ``sqrt(2)``.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    g = nx.Graph()
    positions: dict[int, tuple[float, float]] = {}
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            g.add_node(node)
            positions[node] = (float(c), float(r))
            if c + 1 < cols:
                g.add_edge(node, node + 1, weight=1.0)
            if r + 1 < rows:
                g.add_edge(node, node + cols, weight=1.0)
            if diagonal:
                if r + 1 < rows and c + 1 < cols:
                    g.add_edge(node, node + cols + 1, weight=math.sqrt(2.0))
                if r + 1 < rows and c - 1 >= 0:
                    g.add_edge(node, node + cols - 1, weight=math.sqrt(2.0))
    return SensorNetwork(g, positions=positions, normalize=False)


def ring_network(n: int) -> SensorNetwork:
    """A cycle of ``n`` sensors with unit edges (§1.3's hard case for trees)."""
    if n < 3:
        raise ValueError("ring needs at least 3 nodes")
    g = nx.cycle_graph(n)
    for _, _, d in g.edges(data=True):
        d["weight"] = 1.0
    positions = {
        i: (math.cos(2 * math.pi * i / n), math.sin(2 * math.pi * i / n))
        for i in range(n)
    }
    return SensorNetwork(g, positions=positions, normalize=False)


def line_network(n: int) -> SensorNetwork:
    """A path of ``n`` sensors with unit edges."""
    if n < 1:
        raise ValueError("line needs at least 1 node")
    g = nx.path_graph(n)
    for _, _, d in g.edges(data=True):
        d["weight"] = 1.0
    positions = {i: (float(i), 0.0) for i in range(n)}
    return SensorNetwork(g, positions=positions, normalize=False)


def star_network(n: int) -> SensorNetwork:
    """A star: node 0 is the hub, nodes ``1..n-1`` are leaves (unit edges)."""
    if n < 2:
        raise ValueError("star needs at least 2 nodes")
    g = nx.star_graph(n - 1)
    for _, _, d in g.edges(data=True):
        d["weight"] = 1.0
    positions = {0: (0.0, 0.0)}
    for i in range(1, n):
        a = 2 * math.pi * i / (n - 1)
        positions[i] = (math.cos(a), math.sin(a))
    return SensorNetwork(g, positions=positions, normalize=False)


def random_geometric_network(
    n: int,
    radius: float | None = None,
    seed: int = 0,
    side: float = 1.0,
) -> SensorNetwork:
    """A connected unit-disk sensor deployment.

    ``n`` sensors are placed uniformly at random in a ``side × side``
    square; sensors within ``radius`` are adjacent, edge weight =
    Euclidean distance. If ``radius`` is None a radius slightly above
    the connectivity threshold ``sqrt(log n / (pi n))`` is chosen.
    The generator retries with a 10% larger radius (up to 20 times)
    until the graph is connected, so the result is always a valid
    :class:`SensorNetwork`.
    """
    if n < 2:
        raise ValueError("need at least 2 sensors")
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2)) * side
    if radius is None:
        radius = side * math.sqrt(2.0 * math.log(max(n, 3)) / (math.pi * n))
    for _ in range(20):
        g = nx.Graph()
        g.add_nodes_from(range(n))
        # vectorized pairwise distances
        diff = pts[:, None, :] - pts[None, :, :]
        dmat = np.sqrt((diff**2).sum(axis=2))
        ii, jj = np.nonzero((dmat <= radius) & (dmat > 0))
        for i, j in zip(ii.tolist(), jj.tolist(), strict=True):
            if i < j:
                g.add_edge(i, j, weight=float(dmat[i, j]))
        if g.number_of_edges() > 0 and nx.is_connected(g):
            positions = {i: (float(pts[i, 0]), float(pts[i, 1])) for i in range(n)}
            return SensorNetwork(g, positions=positions, normalize=True)
        radius *= 1.1
    raise RuntimeError("could not generate a connected geometric network")


def erdos_renyi_network(n: int, p: float | None = None, seed: int = 0) -> SensorNetwork:
    """A connected Erdős–Rényi graph with random weights in ``[1, 4]``.

    Used as the "general network" model of §6. ``p`` defaults to
    ``2 ln n / n`` (above the connectivity threshold); the generator
    reseeds until connected.
    """
    if n < 2:
        raise ValueError("need at least 2 nodes")
    if p is None:
        p = min(1.0, 2.0 * math.log(max(n, 3)) / n)
    for attempt in range(50):
        g = nx.gnp_random_graph(n, p, seed=seed + attempt)
        if g.number_of_edges() > 0 and nx.is_connected(g):
            rng = np.random.default_rng(seed + attempt)
            for _, _, d in g.edges(data=True):
                d["weight"] = float(1.0 + 3.0 * rng.random())
            positions = _spring_positions(g, seed)
            return SensorNetwork(g, positions=positions, normalize=True)
        p = min(1.0, p * 1.2)
    raise RuntimeError("could not generate a connected Erdős–Rényi graph")


def random_tree_network(n: int, seed: int = 0) -> SensorNetwork:
    """A uniformly random labelled tree with random weights in ``[1, 4]``."""
    if n < 1:
        raise ValueError("need at least 1 node")
    if n == 1:
        g = nx.Graph()
        g.add_node(0)
        return SensorNetwork(g, positions={0: (0.0, 0.0)}, normalize=False)
    g = nx.random_labeled_tree(n, seed=seed)
    rng = np.random.default_rng(seed)
    for _, _, d in g.edges(data=True):
        d["weight"] = float(1.0 + 3.0 * rng.random())
    positions = _spring_positions(g, seed)
    return SensorNetwork(g, positions=positions, normalize=True)


def _spring_positions(g: nx.Graph, seed: int) -> dict[int, tuple[float, float]]:
    pos = nx.spring_layout(g, seed=seed)
    return {v: (float(x), float(y)) for v, (x, y) in pos.items()}


def paper_grid_sizes() -> list[tuple[int, int]]:
    """Grid dimensions spanning the paper's "10 to 1024 nodes" sweep (§8).

    Returns (rows, cols) pairs whose products are approximately
    10, 25, 64, 144, 256, 484, 1024.
    """
    return [(2, 5), (5, 5), (8, 8), (12, 12), (16, 16), (22, 22), (32, 32)]
