"""The built-in scenario pack (ROADMAP item 4's workload catalog).

Six scenarios spanning the regimes the related work says diverge:

- ``zipf-flash-crowd`` — skewed object popularity with a query storm on
  the head object: the serve layer's coalescing/admission regime;
- ``rush-hour`` — commuter flows, phase-correlated directional traffic
  (Płaczek's communication-aware tracking motivates this regime);
- ``hotspot-drift`` — attractor-biased movement plus Zipf queries:
  spatial *and* popularity skew at once;
- ``adversarial-handover`` — every object oscillates across the single
  adjacency whose detection paths diverge highest in the hierarchy,
  maximizing per-move maintenance cost (the Eppstein–Goodrich–Löffler
  few-handovers adversary aimed at MOT's proxy boundaries);
- ``churn-faults`` — a random-walk workload executed under an injected
  :class:`~repro.sim.faults.FaultPlan` (message loss, jitter, staggered
  crash windows), reporting the chaos/churn section on top of the
  standard metrics;
- ``trace-replay`` — records a seeded workload as an obs JSONL trace,
  reconstructs it with :mod:`repro.scenarios.replay`, digest-checks the
  round trip, and evaluates the *reconstructed* workload.

Import this module for its side effect (registration); the harness and
CLI do so through :mod:`repro.scenarios` itself.
"""

from __future__ import annotations

from repro.experiments.chaos import build_fault_plan
from repro.experiments.config import ChaosExperiment
from repro.graphs.network import SensorNetwork
from repro.hierarchy.structure import build_hierarchy
from repro.scenarios.registry import (
    ScenarioScale,
    register_scenario,
)
from repro.scenarios.replay import record_workload_trace, workload_from_events
from repro.sim.faults import FaultPlan
from repro.sim.mobility import oscillation_trajectories
from repro.sim.workload import (
    Workload,
    make_workload,
    workload_digest,
    workload_from_trajectories,
)

__all__ = ["boundary_edge"]


@register_scenario(
    "zipf-flash-crowd",
    description="Zipf-skewed object popularity with a flash-crowd query storm "
    "on the most popular object",
    tags=("skew", "queries", "serve"),
)
def _zipf_flash_crowd(net: SensorNetwork, scale: ScenarioScale, seed: int) -> Workload:
    return make_workload(
        net,
        num_objects=scale.num_objects,
        moves_per_object=scale.moves_per_object,
        num_queries=scale.num_queries,
        seed=seed,
        query_popularity="zipf",
        zipf_exponent=1.2,
        flash_crowd_fraction=0.25,
    )


@register_scenario(
    "rush-hour",
    description="commuter flows: every object commutes home-to-work and back "
    "in phase-correlated directional waves",
    tags=("mobility", "directional"),
)
def _rush_hour(net: SensorNetwork, scale: ScenarioScale, seed: int) -> Workload:
    return make_workload(
        net,
        num_objects=scale.num_objects,
        moves_per_object=scale.moves_per_object,
        num_queries=scale.num_queries,
        seed=seed,
        mobility="commuter",
    )


@register_scenario(
    "hotspot-drift",
    description="hotspot-biased movement with Zipf query popularity: spatial "
    "and popularity skew combined",
    tags=("mobility", "skew"),
)
def _hotspot_drift(net: SensorNetwork, scale: ScenarioScale, seed: int) -> Workload:
    return make_workload(
        net,
        num_objects=scale.num_objects,
        moves_per_object=scale.moves_per_object,
        num_queries=scale.num_queries,
        seed=seed,
        mobility="hotspot",
        query_popularity="zipf",
    )


def boundary_edge(net: SensorNetwork, seed: int) -> "tuple":
    """The adjacency whose detection paths diverge highest in ``HS``.

    Builds the same hierarchy the eval tracker will use (same seed) and
    scores every edge ``(u, v)`` by the lowest level at which
    ``DPath(u)`` and ``DPath(v)`` first share a node — the level a move
    across that edge must climb to. The maximizing edge is the §1.3
    worst case *aimed at MOT itself* rather than at a spanning tree:
    oscillating across it forces every maintenance operation to pay the
    highest available climb (Eppstein et al.'s adversarial mover).
    """
    hs = build_hierarchy(net, seed=seed)
    dpaths = {v: hs.dpath(v) for v in net.nodes}
    best_edge = None
    best_level = 0
    edges = sorted(
        (tuple(sorted(e, key=net.index_of)) for e in net.graph.edges()),
        key=lambda e: (net.index_of(e[0]), net.index_of(e[1])),
    )
    for u, v in edges:
        pu, pv = dpaths[u], dpaths[v]
        meet = hs.h + 1  # disjoint all the way (cannot happen at the root)
        for level in range(1, hs.h + 1):
            if set(pu[level]) & set(pv[level]):
                meet = level
                break
        if meet > best_level:
            best_level = meet
            best_edge = (u, v)
    assert best_edge is not None, "a connected network has at least one edge"
    return best_edge


@register_scenario(
    "adversarial-handover",
    description="all objects oscillate across the adjacency with the highest "
    "detection-path divergence, maximizing maintenance cost",
    tags=("adversarial", "maintenance"),
)
def _adversarial_handover(
    net: SensorNetwork, scale: ScenarioScale, seed: int
) -> Workload:
    edge = boundary_edge(net, seed)
    trajectories = oscillation_trajectories(
        net,
        num_objects=scale.num_objects,
        moves_per_object=scale.moves_per_object,
        seed=seed,
        edge=edge,
    )
    return workload_from_trajectories(
        net, trajectories, num_queries=scale.num_queries, seed=seed
    )


def _churn_fault_plan(net: SensorNetwork, scale: ScenarioScale, seed: int) -> FaultPlan:
    exp = ChaosExperiment(
        side=scale.side,
        num_objects=scale.num_objects,
        moves_per_object=scale.moves_per_object,
        num_queries=scale.num_queries,
        seed=seed,
        message_loss=0.1,
        delay_jitter=0.25,
        num_crashes=2,
        crash_duration=30.0,
        fault_seed=seed + 101,
    )
    return build_fault_plan(exp, net)


@register_scenario(
    "churn-faults",
    description="random-walk workload under message loss, latency jitter and "
    "staggered crash/restart windows (chaos + churn accounting)",
    tags=("faults", "churn", "chaos"),
    fault_plan=_churn_fault_plan,
)
def _churn_faults(net: SensorNetwork, scale: ScenarioScale, seed: int) -> Workload:
    return make_workload(
        net,
        num_objects=scale.num_objects,
        moves_per_object=scale.moves_per_object,
        num_queries=scale.num_queries,
        seed=seed,
    )


@register_scenario(
    "trace-replay",
    description="records a seeded workload as an obs JSONL trace, replays it "
    "through the trace loader, and evaluates the digest-checked reconstruction",
    tags=("replay", "obs"),
)
def _trace_replay(net: SensorNetwork, scale: ScenarioScale, seed: int) -> Workload:
    base = make_workload(
        net,
        num_objects=scale.num_objects,
        moves_per_object=scale.moves_per_object,
        num_queries=scale.num_queries,
        seed=seed,
    )
    events = record_workload_trace(net, base, seed=seed)
    rebuilt = workload_from_events(events, net)
    if workload_digest(rebuilt) != workload_digest(base):
        raise RuntimeError(
            "trace-replay round trip lost information: digests diverge"
        )
    return rebuilt
