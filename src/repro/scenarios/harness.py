"""The `repro eval` harness: one scenario → one canonical EvalReport.

Each scenario runs through **both** execution paths the project keeps
equivalent:

1. the sequential reference — :func:`execute_one_by_one` over a fresh
   :class:`~repro.core.mot.MOTTracker` (cost ratios vs the paper's
   optimal baselines, per-node load distribution), and
2. the serve layer — the scenario workload replayed through
   :func:`repro.serve.bench.drive_workload` (open-loop arrivals,
   latency percentiles, admission outcomes, the sequential-replay
   audit). Under the default virtual clock this section is fully
   deterministic; ``workers > 0`` forks real shard processes on the
   wall clock instead (virtual clock + workers is refused, matching
   serve-bench).

Scenarios carrying a ``fault_plan`` additionally run the concurrent
simulator under injected faults and report the chaos/churn section
(delivery stats, consistency audit, §7 churn accounting).

The report is JSON-ready and — on the virtual clock — byte-identical
across same-seed runs (:func:`canonical_json` pins the serialization),
which is what lets CI commit per-scenario baselines and gate on them
(:mod:`repro.scenarios.gate`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.experiments.chaos import check_consistency, replay_churn
from repro.experiments.runner import (
    execute_concurrent,
    execute_one_by_one,
    make_concurrent_tracker,
    make_tracker,
)
from repro.graphs.generators import grid_network
from repro.graphs.network import SensorNetwork
from repro.metrics.load import LoadStats
from repro.scenarios.registry import ScenarioSpec, all_scenarios, get_scenario
from repro.serve.bench import ServeBenchConfig, drive_workload
from repro.sim.workload import Workload, workload_digest

__all__ = ["EvalConfig", "run_scenario", "run_suite", "canonical_json"]

#: report-schema version, bumped when the EvalReport shape changes so a
#: stale committed baseline fails loudly instead of comparing garbage
EVAL_REPORT_VERSION = 1


@dataclass(frozen=True)
class EvalConfig:
    """Parameters of one ``repro eval`` run (suite-wide, scenario-free)."""

    scale: str = "smoke"
    seed: int = 7
    shards: int = 4
    #: 0 = in-process asyncio shards; N > 0 forks N worker processes
    #: (wall clock required, exactly as in serve-bench)
    workers: int = 0
    clock: str = "virtual"  # "virtual" (deterministic) or "wall"
    rate: float = 500.0  # serve-section offered load, ops/s
    distance_backend: str = "auto"
    batch_size: int = 16
    queue_capacity: int = 64
    #: also run the serve section through the columnar batch engine and
    #: report it side by side (``serve_batch``); never gated against
    #: committed baselines — it is a comparison surface, not a baseline
    batch_core: bool = False

    def __post_init__(self) -> None:
        if self.clock not in ("virtual", "wall"):
            raise ValueError('clock must be "virtual" or "wall"')
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = in-process shards)")
        if self.workers > 0 and self.clock != "wall":
            raise ValueError('workers > 0 requires clock="wall"')
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.distance_backend not in ("auto", "full", "lazy", "landmark", "memmap"):
            raise ValueError(f"unknown distance_backend {self.distance_backend!r}")

    def as_dict(self) -> dict:
        """JSON-ready view (the report's ``suite`` header)."""
        return asdict(self)


def _build_network(side: int, backend: str) -> SensorNetwork:
    net = grid_network(side, side)
    if backend != "auto":
        net = SensorNetwork(net.graph, normalize=False, distance_backend=backend)
    return net


def _sequential_section(net: SensorNetwork, workload: Workload, seed: int) -> dict:
    tracker = make_tracker("MOT", net, workload.traffic, seed=seed)
    ledger = execute_one_by_one(tracker, workload)
    stats = LoadStats.from_loads(tracker.load_per_node())
    return {
        "maintenance_cost_ratio": ledger.maintenance_cost_ratio,
        "query_cost_ratio": ledger.query_cost_ratio,
        "maintenance_ops": ledger.maintenance_ops,
        "noop_moves": ledger.noop_moves,
        "query_ops": ledger.query_ops,
        "publish_cost": ledger.publish_cost,
        "load": {
            "max_load": stats.max_load,
            "mean_load": stats.mean_load,
            "above_threshold": stats.above_threshold,
            "threshold": stats.threshold,
        },
    }


def _serve_section(
    net: SensorNetwork, workload: Workload, cfg: EvalConfig, batch_core: bool = False
) -> dict:
    bench = ServeBenchConfig(
        nodes=net.n,
        num_objects=len(workload.starts),
        moves_per_object=(
            len(workload.moves) // len(workload.starts) if workload.starts else 0
        ),
        num_queries=len(workload.queries),
        shards=cfg.shards,
        workers=cfg.workers,
        rate=cfg.rate,
        seed=cfg.seed,
        batch_size=cfg.batch_size,
        queue_capacity=cfg.queue_capacity,
        clock=cfg.clock,
        distance_backend=cfg.distance_backend,
        metrics_snapshot_interval_s=None,
        batch_core=batch_core,
    )
    report = drive_workload(net, workload, bench)
    # the lean, gate-relevant slice: drop prometheus text, snapshots and
    # worker pids — those belong to serve-bench's full report
    return {
        "loadgen": report["loadgen"],
        "latency_ms": report["latency_ms"],
        "throughput_ops_s": report["achieved_throughput_ops_s"],
        "per_shard": report["per_shard"],
        "ledger": report["ledger"],
        "audit_ok": report["audit"]["ok"],
        "audit": {
            "objects_checked": report["audit"]["objects_checked"],
            "moves_replayed": report["audit"]["moves_replayed"],
            "queries_checked": report["audit"]["queries_checked"],
            "proxy_mismatches": report["audit"]["proxy_mismatches"],
            "cost_mismatches": report["audit"]["cost_mismatches"],
        },
    }


def _chaos_section(
    net: SensorNetwork, workload: Workload, spec: ScenarioSpec, cfg: EvalConfig
) -> dict:
    scale = spec.scale(cfg.scale)
    plan = spec.fault_plan(net, scale, cfg.seed)  # type: ignore[misc]
    tracker = make_concurrent_tracker("MOT", net, workload.traffic, seed=cfg.seed)
    injector = tracker.attach_faults(plan)
    execute_concurrent(tracker, workload)
    consistency = check_consistency(tracker, workload)
    churn = replay_churn(net, plan, workload, seed=cfg.seed) if plan.crashes else {}
    return {
        "plan": {
            "message_loss": plan.message_loss,
            "delay_jitter": plan.delay_jitter,
            "crashes": len(plan.crashes),
        },
        "delivery": injector.stats(),
        "retries": tracker.retries,
        "transmit_failures": tracker.transmit_failures,
        "failed_ops": len(tracker.failed_ops),
        "maintenance_cost_ratio": tracker.ledger.maintenance_cost_ratio,
        "query_cost_ratio": tracker.ledger.query_cost_ratio,
        "consistency_ok": consistency.ok,
        "churn": churn,
    }


def metric_at(report: dict, path: str) -> "tuple[bool, object]":
    """Resolve a dot-separated metric path; ``(found, value)``."""
    node: object = report
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return False, None
        node = node[part]
    return True, node


def run_scenario(spec: ScenarioSpec, cfg: "EvalConfig | None" = None) -> dict:
    """Evaluate one scenario; return its JSON-ready EvalReport.

    Raises ``RuntimeError`` if the finished report is missing any of the
    scenario's ``expected_metrics`` — a scenario whose schema promise is
    broken must fail the run, not silently emit a thinner report the
    gate would then "pass".
    """
    cfg = cfg or EvalConfig()
    scale = spec.scale(cfg.scale)
    net = _build_network(scale.side, cfg.distance_backend)
    workload = spec.generate(net, scale, cfg.seed)
    report = {
        "scenario": {
            "name": spec.name,
            "description": spec.description,
            "tags": list(spec.tags),
            "scale": {"name": cfg.scale, **scale.as_dict()},
        },
        "digest": workload_digest(workload),
        "workload": {
            "objects": len(workload.starts),
            "moves": len(workload.moves),
            "queries": len(workload.queries),
        },
        "sequential": _sequential_section(net, workload, cfg.seed),
        "serve": _serve_section(net, workload, cfg),
    }
    if cfg.batch_core:
        # parallel columnar-engine run of the identical workload; the
        # gate never reads this section (baselines are recorded without
        # it), it exists so eval reports can show scalar vs batch side
        # by side — audit_ok is the equivalence signal
        report["serve_batch"] = _serve_section(net, workload, cfg, batch_core=True)
    if spec.fault_plan is not None:
        report["chaos"] = _chaos_section(net, workload, spec, cfg)
    missing = [p for p in spec.expected_metrics if not metric_at(report, p)[0]]
    if missing:
        raise RuntimeError(
            f"scenario {spec.name!r} report is missing expected metrics: {missing}"
        )
    return report


def run_suite(
    cfg: "EvalConfig | None" = None, names: "list[str] | None" = None
) -> dict:
    """Run a set of scenarios (default: all registered) into one report."""
    cfg = cfg or EvalConfig()
    specs = (
        [get_scenario(n) for n in names]
        if names is not None
        else list(all_scenarios().values())
    )
    return {
        "version": EVAL_REPORT_VERSION,
        "suite": cfg.as_dict(),
        "scenarios": {spec.name: run_scenario(spec, cfg) for spec in specs},
    }


def canonical_json(report: dict) -> str:
    """The report's canonical serialization (sorted keys, 1-indent).

    ``repro eval`` writes exactly this, so two same-seed virtual-clock
    runs produce byte-identical files — the property the determinism
    test and the CI ``cmp`` gate check.
    """
    import json

    return json.dumps(report, indent=1, sort_keys=True)
