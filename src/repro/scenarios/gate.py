"""Baseline comparison for EvalReports (`repro eval --check`).

CI commits one baseline file (``benchmarks/eval_baselines.json``,
written by ``repro eval --write-baseline``) holding, per scenario, the
workload digest and a curated set of gate metrics with per-metric
tolerance bands. :func:`compare_eval_reports` re-checks a fresh suite
report against it:

- digests compare **exactly** — scenario content drift (a generator
  edit, a seed change, an RNG-order regression) is always a failure,
  never absorbed by a tolerance band;
- integer-exact metrics (operation counts, load counts, admission
  outcomes) use tolerance ``0.0``;
- cost ratios and latency percentiles get small bands, compared with
  :func:`repro.core.costs.close_to` (floats are never ``==``-compared
  — RPL004 applies to the gate too).

The comparator is deliberately one-sided about *schema*: a scenario
present in the baseline but missing from the current run fails
(``missing_scenario``), and so does a new scenario with no baseline
(``unknown_scenario``) — regenerate the baseline when the pack changes.
"""

from __future__ import annotations

from repro.core.costs import close_to
from repro.scenarios.harness import metric_at

__all__ = ["GATE_METRICS", "write_baseline", "compare_eval_reports"]

#: (metric path, relative tolerance) pairs the gate checks when present.
#: Counts are exact; ratios/latencies get bands sized to the observed
#: same-seed stability of each section (virtual clock ⇒ tight).
GATE_METRICS: "tuple[tuple[str, float], ...]" = (
    ("sequential.maintenance_cost_ratio", 0.05),
    ("sequential.query_cost_ratio", 0.05),
    ("sequential.maintenance_ops", 0.0),
    ("sequential.noop_moves", 0.0),
    ("sequential.query_ops", 0.0),
    ("sequential.load.max_load", 0.0),
    ("sequential.load.above_threshold", 0.0),
    ("serve.ledger.maintenance_cost_ratio", 0.05),
    ("serve.ledger.query_cost_ratio", 0.05),
    ("serve.loadgen.completed", 0.0),
    ("serve.loadgen.rejected.total", 0.0),
    ("serve.latency_ms.all.p99_ms", 0.15),
    ("serve.audit_ok", 0.0),
    ("chaos.consistency_ok", 0.0),
    ("chaos.maintenance_cost_ratio", 0.10),
    ("chaos.churn.rehome_ops", 0.0),
)


def write_baseline(report: dict) -> dict:
    """Distill a suite report into the committed baseline shape.

    Only the gate metrics actually present in each scenario report are
    pinned (chaos paths only exist for fault-plan scenarios), each next
    to the tolerance it will be checked with — the baseline file is
    self-describing, so widening a band is a reviewed diff.
    """
    scenarios = {}
    for name, rep in report["scenarios"].items():
        metrics: dict = {}
        tolerances: dict = {}
        for path, tol in GATE_METRICS:
            found, value = metric_at(rep, path)
            if found:
                metrics[path] = value
                tolerances[path] = tol
        scenarios[name] = {
            "digest": rep["digest"],
            "metrics": metrics,
            "tolerances": tolerances,
        }
    return {
        "version": report.get("version", 1),
        "suite": report["suite"],
        "scenarios": scenarios,
    }


def _check_value(cur: object, base: object, tol: float) -> "tuple[bool, str]":
    """(passed, failure kind) for one metric value pair."""
    # bool first: bool is an int subclass, and audit_ok must flip the
    # gate on any change, not compare as 0.0 vs 1.0
    if isinstance(base, bool) or isinstance(cur, bool):
        return (cur is base, "out_of_band")
    if isinstance(base, (int, float)) and isinstance(cur, (int, float)):
        return (close_to(float(cur), float(base), tol=tol), "out_of_band")
    if isinstance(base, str) and isinstance(cur, str):
        return (cur == base, "out_of_band")
    return (False, "type_mismatch")


def compare_eval_reports(current: dict, baseline: dict) -> dict:
    """Gate a fresh suite report against a committed baseline.

    Returns ``{"ok", "checked", "failures": [...]}`` where each failure
    carries ``scenario``/``metric``/``kind``/``current``/``baseline``/
    ``tolerance``. ``ok`` is True iff there are no failures.
    """
    failures: list = []
    checked = 0
    cur_scenarios = current.get("scenarios", {})
    base_scenarios = baseline.get("scenarios", {})

    def fail(scenario, metric, kind, cur=None, base=None, tol=None) -> None:
        failures.append(
            {
                "scenario": scenario,
                "metric": metric,
                "kind": kind,
                "current": cur,
                "baseline": base,
                "tolerance": tol,
            }
        )

    for name in sorted(base_scenarios):
        if name not in cur_scenarios:
            fail(name, None, "missing_scenario")
            continue
        rep = cur_scenarios[name]
        base = base_scenarios[name]
        checked += 1
        if rep.get("digest") != base.get("digest"):
            fail(
                name,
                "digest",
                "digest_mismatch",
                cur=rep.get("digest"),
                base=base.get("digest"),
            )
        for path, base_value in sorted(base.get("metrics", {}).items()):
            tol = float(base.get("tolerances", {}).get(path, 0.0))
            found, cur_value = metric_at(rep, path)
            if not found:
                fail(name, path, "missing_metric", base=base_value, tol=tol)
                continue
            checked += 1
            passed, kind = _check_value(cur_value, base_value, tol)
            if not passed:
                fail(name, path, kind, cur=cur_value, base=base_value, tol=tol)
    for name in sorted(cur_scenarios):
        if name not in base_scenarios:
            fail(name, None, "unknown_scenario")

    return {"ok": not failures, "checked": checked, "failures": failures}
