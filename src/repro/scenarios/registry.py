"""Declarative scenario registry (`repro eval`'s catalog).

A *scenario* is a named, seeded workload generator plus the schema of
metrics its evaluation report must carry. Packs register scenarios with
the :func:`register_scenario` decorator::

    @register_scenario(
        "rush-hour",
        description="commuter flows: directional morning/evening waves",
        tags=("mobility", "skew"),
    )
    def _gen(net: SensorNetwork, scale: ScenarioScale, seed: int) -> Workload:
        return make_workload(net, scale.num_objects, ..., mobility="commuter")

and the eval harness (:mod:`repro.scenarios.harness`) runs every
registered scenario through the sequential tracker and the serve layer,
emitting one :data:`EvalReport <repro.scenarios.harness.run_scenario>`
per scenario. The registry is deliberately declarative: scenario
*identity* is (name, scale, seed) and the generated workload is
digest-stamped (:func:`repro.sim.workload.workload_digest`), so the CI
gate can pin exact workload content per scenario.

Scenarios with a ``fault_plan`` hook additionally run the concurrent
simulator under that :class:`~repro.sim.faults.FaultPlan` and report
the chaos/churn section (see the ``churn-faults`` pack scenario).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro.graphs.network import SensorNetwork
from repro.sim.faults import FaultPlan
from repro.sim.workload import Workload

__all__ = [
    "ScenarioScale",
    "ScenarioSpec",
    "register_scenario",
    "get_scenario",
    "all_scenarios",
    "scenario_names",
    "DEFAULT_SCALES",
    "EXPECTED_METRICS_BASE",
    "EXPECTED_METRICS_CHAOS",
]

#: generator signature: (network, scale, seed) -> workload
Generator = Callable[[SensorNetwork, "ScenarioScale", int], Workload]
#: fault-plan hook signature: (network, scale, seed) -> plan
FaultPlanFactory = Callable[[SensorNetwork, "ScenarioScale", int], FaultPlan]

_NAME_RE = re.compile(r"^[a-z0-9]+(-[a-z0-9]+)*$")


@dataclass(frozen=True)
class ScenarioScale:
    """One named size of a scenario (grid side × workload shape)."""

    side: int
    num_objects: int
    moves_per_object: int
    num_queries: int

    def __post_init__(self) -> None:
        if self.side < 2:
            raise ValueError("side must be >= 2")
        if self.num_objects < 1 or self.moves_per_object < 0 or self.num_queries < 0:
            raise ValueError("need >= 1 object and >= 0 moves/queries")

    def as_dict(self) -> dict:
        """JSON-ready view (embedded in every scenario report)."""
        return {
            "side": self.side,
            "num_objects": self.num_objects,
            "moves_per_object": self.moves_per_object,
            "num_queries": self.num_queries,
        }


#: the standard scale ladder: "smoke" gates CI, "full" is the
#: measurement scale perf work (ROADMAP items 3/5) reports against
DEFAULT_SCALES: "dict[str, ScenarioScale]" = {
    "smoke": ScenarioScale(side=8, num_objects=12, moves_per_object=20, num_queries=60),
    "full": ScenarioScale(side=16, num_objects=48, moves_per_object=60, num_queries=300),
}

#: metric paths (dot-separated into the scenario report) every
#: scenario's EvalReport must carry — the expected-metric schema
EXPECTED_METRICS_BASE: tuple = (
    "digest",
    "sequential.maintenance_cost_ratio",
    "sequential.query_cost_ratio",
    "sequential.maintenance_ops",
    "sequential.query_ops",
    "sequential.load.max_load",
    "sequential.load.above_threshold",
    "serve.loadgen.completed",
    "serve.latency_ms.all.p99_ms",
    "serve.ledger.maintenance_cost_ratio",
    "serve.ledger.query_cost_ratio",
    "serve.audit_ok",
)

#: fault-plan scenarios additionally report the chaos/churn section
EXPECTED_METRICS_CHAOS: tuple = EXPECTED_METRICS_BASE + (
    "chaos.consistency_ok",
    "chaos.maintenance_cost_ratio",
    "chaos.churn.rehome_ops",
)


@dataclass(frozen=True)
class ScenarioSpec:
    """One registered scenario: generator + metadata + metric schema."""

    name: str
    description: str
    generate: Generator
    tags: tuple = ()
    scales: Mapping[str, ScenarioScale] = field(default_factory=lambda: DEFAULT_SCALES)
    expected_metrics: tuple = EXPECTED_METRICS_BASE
    fault_plan: Optional[FaultPlanFactory] = None

    def scale(self, name: str) -> ScenarioScale:
        """The named scale, with a helpful error for unknown names."""
        try:
            return self.scales[name]
        except KeyError:
            raise ValueError(
                f"scenario {self.name!r} has no scale {name!r}; "
                f"choose from {sorted(self.scales)}"
            ) from None


_REGISTRY: "dict[str, ScenarioSpec]" = {}


def register_scenario(
    name: str,
    *,
    description: str,
    tags: tuple = (),
    scales: "Mapping[str, ScenarioScale] | None" = None,
    expected_metrics: "tuple | None" = None,
    fault_plan: Optional[FaultPlanFactory] = None,
) -> Callable[[Generator], Generator]:
    """Decorator: register the decorated generator under ``name``.

    Names are kebab-case (CLI-friendly); double registration is an
    error (a pack reloading under a different import path should fail
    loudly, not shadow). ``expected_metrics`` defaults to the base
    schema, plus the chaos section when a ``fault_plan`` is given.
    """
    if not _NAME_RE.match(name):
        raise ValueError(f"scenario name {name!r} is not kebab-case")

    def deco(fn: Generator) -> Generator:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} is already registered")
        metrics = expected_metrics
        if metrics is None:
            metrics = EXPECTED_METRICS_CHAOS if fault_plan else EXPECTED_METRICS_BASE
        _REGISTRY[name] = ScenarioSpec(
            name=name,
            description=description,
            generate=fn,
            tags=tuple(tags),
            scales=dict(scales) if scales is not None else DEFAULT_SCALES,
            expected_metrics=tuple(metrics),
            fault_plan=fault_plan,
        )
        return fn

    return deco


def get_scenario(name: str) -> ScenarioSpec:
    """The registered spec, with the known names in the error message."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        ) from None


def all_scenarios() -> "dict[str, ScenarioSpec]":
    """Every registered scenario, sorted by name (a copy)."""
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}


def scenario_names() -> "list[str]":
    """Sorted registered names."""
    return sorted(_REGISTRY)
