"""Scenario packs and the standardized ``repro eval`` harness.

The subsystem behind ``python -m repro eval``:

- :mod:`repro.scenarios.registry` — the declarative scenario catalog
  (:func:`register_scenario`, :class:`ScenarioSpec`, scale ladder);
- :mod:`repro.scenarios.packs` — the built-in pack (Zipf flash crowd,
  rush hour, hotspot drift, adversarial handover, churn-under-faults,
  trace replay), registered on import;
- :mod:`repro.scenarios.harness` — runs a scenario through both the
  sequential reference and the serve layer into one canonical
  EvalReport;
- :mod:`repro.scenarios.gate` — tolerance-banded comparison against
  committed per-scenario baselines (the CI regression gate);
- :mod:`repro.scenarios.replay` — reconstructs workloads from obs
  JSONL traces (the record → replay → digest round trip).

Importing this package registers the built-in pack.
"""

from repro.scenarios.gate import (
    GATE_METRICS,
    compare_eval_reports,
    write_baseline,
)
from repro.scenarios.harness import (
    EvalConfig,
    canonical_json,
    metric_at,
    run_scenario,
    run_suite,
)
from repro.scenarios.registry import (
    DEFAULT_SCALES,
    ScenarioScale,
    ScenarioSpec,
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.replay import (
    record_workload_trace,
    workload_from_events,
    workload_from_trace,
)

from repro.scenarios import packs  # noqa: F401  (registers the built-in pack)

__all__ = [
    "DEFAULT_SCALES",
    "EvalConfig",
    "GATE_METRICS",
    "ScenarioScale",
    "ScenarioSpec",
    "all_scenarios",
    "canonical_json",
    "compare_eval_reports",
    "get_scenario",
    "metric_at",
    "record_workload_trace",
    "register_scenario",
    "run_scenario",
    "run_suite",
    "scenario_names",
    "workload_from_events",
    "workload_from_trace",
    "write_baseline",
]
