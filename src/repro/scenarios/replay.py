"""Trace replay: reconstruct a :class:`Workload` from an obs JSONL trace.

The obs layer's sequential traces are *replayable*: core MOT spans
carry enough annotations (``publish``: the start proxy; ``move``: the
``src``/``dst`` proxies, ``dst`` alone on no-op events; ``query``: the
``source`` sensor) to rebuild the exact operation sequence that
produced them. :func:`workload_from_trace` inverts a recorded trace
back into a workload whose :func:`~repro.sim.workload.workload_digest`
matches the original — the record → replay → digest round trip the
``trace-replay`` scenario and its test lock in.

Only *sequential* traces replay exactly: a serve-layer trace interleaves
per-shard batches, so its global move order differs from the workload's
even though each object's order is preserved. Record with
:func:`record_workload_trace` (or any one-by-one traced run) to get a
replayable artifact.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Union

from repro.baselines.traffic import TrafficProfile
from repro.core.mot import MOTTracker
from repro.graphs.network import SensorNetwork
from repro.obs.export import encode_event, read_trace
from repro.obs.trace import json_safe, tracing
from repro.sim.workload import MoveOp, QueryOp, Workload

__all__ = [
    "record_workload_trace",
    "workload_from_events",
    "workload_from_trace",
]


def record_workload_trace(
    net: SensorNetwork, workload: Workload, seed: int = 0
) -> "list[dict[str, Any]]":
    """Run ``workload`` through a sequential MOT with tracing; return events.

    Events come back as decoded dicts in the exact on-disk JSONL shape
    (each is round-tripped through :func:`encode_event`), so writing
    them with :func:`repro.obs.export.write_trace` and re-reading with
    :func:`read_trace` is lossless.
    """
    events: list = []
    tracker = MOTTracker.build(net, seed=seed)
    with tracing(sink=events.append, time_source=None):
        for obj, start in workload.starts.items():
            tracker.publish(obj, start)
        for m in workload.moves:
            tracker.move(m.obj, m.new)
        for q in workload.queries:
            tracker.query(q.obj, q.source)
    return [json.loads(encode_event(ev)) for ev in events]


def _node_lookup(net: SensorNetwork) -> "dict[str, Any]":
    """Map each node's canonical JSON encoding back to the node object.

    Annotations pass through :func:`repro.obs.trace.json_safe` on the
    way out (ints/strs unchanged, tuples to lists, everything else to
    ``repr``), so keying on the sorted-key JSON encoding of the same
    transform inverts any node labelling a network can carry.
    """
    return {
        json.dumps(json_safe(node), sort_keys=True): node for node in net.nodes
    }


def workload_from_events(
    events: "Iterable[dict[str, Any]]", net: SensorNetwork
) -> Workload:
    """Rebuild the workload a sequential trace over ``net`` recorded.

    Non-operation events (``build``, ``serve.*``, message/retry point
    events) are skipped; ``publish``/``move``/``query`` events must
    carry the replay annotations (traces recorded before those existed
    raise ``ValueError``). Trace order becomes workload order, which is
    exactly the execution order of a one-by-one run.
    """
    lookup = _node_lookup(net)

    def decode(index: int, value: Any) -> Any:
        key = json.dumps(value, sort_keys=True)
        try:
            return lookup[key]
        except KeyError:
            raise ValueError(
                f"trace event {index}: {value!r} is not a sensor of this network"
            ) from None

    starts: dict[str, Any] = {}
    moves: list[MoveOp] = []
    queries: list[QueryOp] = []
    seq: dict[str, int] = {}
    for i, ev in enumerate(events):
        kind = ev.get("kind")
        if kind not in ("publish", "move", "query"):
            continue
        obj = ev.get("obj")
        if not isinstance(obj, str):
            raise ValueError(f"trace event {i}: {kind} event without an object id")
        ann = ev.get("annotations", {})
        if kind == "publish":
            if obj in starts:
                raise ValueError(f"trace event {i}: object {obj!r} published twice")
            if "proxy" not in ann:
                raise ValueError(
                    f"trace event {i}: publish without a 'proxy' annotation "
                    "(recorded before trace replay existed?)"
                )
            starts[obj] = decode(i, ann["proxy"])
            seq[obj] = 0
        elif kind == "move":
            if obj not in starts:
                raise ValueError(f"trace event {i}: move of unpublished object {obj!r}")
            if "dst" not in ann:
                raise ValueError(
                    f"trace event {i}: move without a 'dst' annotation "
                    "(recorded before trace replay existed?)"
                )
            new = decode(i, ann["dst"])
            # no-op moves carry only dst (the unchanged proxy)
            old = decode(i, ann["src"]) if "src" in ann else new
            seq[obj] += 1
            moves.append(MoveOp(obj=obj, old=old, new=new, seq=seq[obj]))
        else:  # query
            if obj not in starts:
                raise ValueError(f"trace event {i}: query of unpublished object {obj!r}")
            if "source" not in ann:
                raise ValueError(
                    f"trace event {i}: query without a 'source' annotation "
                    "(recorded before trace replay existed?)"
                )
            queries.append(QueryOp(obj=obj, source=decode(i, ann["source"])))
    if not starts:
        raise ValueError("trace contains no publish events — nothing to replay")
    traffic = TrafficProfile.from_moves(net, [(m.old, m.new) for m in moves])
    return Workload(
        net=net, starts=starts, moves=moves, queries=queries, traffic=traffic
    )


def workload_from_trace(path: Union[str, Path], net: SensorNetwork) -> Workload:
    """:func:`workload_from_events` over a JSONL trace file on disk."""
    return workload_from_events(read_trace(path), net)
