"""repro — reproduction of *Near-Optimal Location Tracking Using Sensor Networks*.

This package implements the MOT (Mobile Object Tracking using Sensors)
algorithm of Sharma, Krishnan, Busch and Brandt (IJNC 2015) together with
every substrate it depends on: the weighted sensor-network model, the
MIS-based hierarchical overlay ``HS``, the de Bruijn load-balancing layer,
the traffic-conscious baselines (STUN, DAT, Z-DAT, Z-DAT with shortcuts),
a discrete-event simulator for concurrent executions, and an experiment
harness that regenerates every figure of the paper's evaluation section.

Quickstart::

    from repro import grid_network, build_hierarchy, MOTTracker

    net = grid_network(8, 8)
    hs = build_hierarchy(net, seed=1)
    tracker = MOTTracker(hs)
    tracker.publish("tiger", proxy=net.node_at(0))
    tracker.move("tiger", new_proxy=net.node_at(9))
    result = tracker.query("tiger", source=net.node_at(63))
    assert result.proxy == net.node_at(9)
"""

from repro.graphs.network import SensorNetwork
from repro.graphs.generators import (
    grid_network,
    ring_network,
    line_network,
    star_network,
    random_geometric_network,
    erdos_renyi_network,
    random_tree_network,
    paper_grid_sizes,
)
from repro.hierarchy.structure import Hierarchy, build_hierarchy
from repro.hierarchy.general import build_general_hierarchy
from repro.core.mot import MOTTracker, MOTConfig
from repro.core.mot_balanced import BalancedMOTTracker
from repro.core.fault_tolerant import FaultTolerantMOT
from repro.core.operations import QueryResult, MoveResult, PublishResult
from repro.baselines.stun import STUNTracker
from repro.baselines.dat import DATTracker
from repro.baselines.zdat import ZDATTracker
from repro.baselines.optimal import optimal_move_cost, optimal_query_cost

__version__ = "1.0.0"

__all__ = [
    "SensorNetwork",
    "grid_network",
    "ring_network",
    "line_network",
    "star_network",
    "random_geometric_network",
    "erdos_renyi_network",
    "random_tree_network",
    "paper_grid_sizes",
    "Hierarchy",
    "build_hierarchy",
    "build_general_hierarchy",
    "MOTTracker",
    "MOTConfig",
    "BalancedMOTTracker",
    "FaultTolerantMOT",
    "QueryResult",
    "MoveResult",
    "PublishResult",
    "STUNTracker",
    "DATTracker",
    "ZDATTracker",
    "optimal_move_cost",
    "optimal_query_cost",
    "__version__",
]
