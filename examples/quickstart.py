#!/usr/bin/env python3
"""Quickstart: track one object on a small sensor grid with MOT.

Builds an 8x8 sensor grid, constructs the MOT hierarchy, publishes an
object, moves it around, and answers queries — printing the
communication cost and the optimal cost of every operation so the cost
ratios the paper reports are visible at the smallest possible scale.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import MOTTracker, build_hierarchy, grid_network


def main() -> None:
    # 1. the sensor network: an 8x8 grid, unit-length adjacencies
    net = grid_network(8, 8)
    print(f"network: {net.n} sensors, diameter {net.diameter:.0f}")

    # 2. the tracking overlay HS (iterated-MIS hierarchy, paper §2.2)
    hs = build_hierarchy(net, seed=1)
    sizes = [len(hs.level_nodes(l)) for l in range(hs.h + 1)]
    print(f"hierarchy: {hs.h + 1} levels, populations {sizes}, root at sensor {hs.root.node}")

    # 3. publish an object at its first proxy (one-time, paper §3)
    tracker = MOTTracker(hs)
    pub = tracker.publish("tiger", proxy=0)
    print(f"\npublish 'tiger' at sensor 0: cost {pub.cost:.0f} "
          f"(one-time, O(D) by Theorem 4.1)")

    # 4. the object moves; each move triggers one maintenance operation
    rnd = random.Random(42)
    cur = 0
    print("\nmaintenance operations (object follows a random walk):")
    for step in range(8):
        cur = rnd.choice(net.neighbors(cur))
        res = tracker.move("tiger", cur)
        print(f"  move -> sensor {cur:2d}: cost {res.cost:5.1f}  "
              f"optimal {res.optimal_cost:.0f}  peak level {res.peak_level}")

    # 5. any sensor can ask where the tiger is
    print("\nqueries from three corners:")
    for source in (7, 56, 63):
        res = tracker.query("tiger", source)
        print(f"  query from {source:2d}: proxy={res.proxy:2d}  cost {res.cost:5.1f}  "
              f"optimal {res.optimal_cost:.0f}  ratio {res.cost_ratio:.2f}"
              f"{'  (via SDL)' if res.via_sdl else ''}")
        assert res.proxy == cur

    # 6. aggregate cost ratios — the quantities the paper's figures plot
    led = tracker.ledger
    print(f"\naggregate maintenance cost ratio: {led.maintenance_cost_ratio:.2f}")
    print(f"aggregate query cost ratio:       {led.query_cost_ratio:.2f}")


if __name__ == "__main__":
    main()
