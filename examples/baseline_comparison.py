#!/usr/bin/env python3
"""Head-to-head: MOT vs STUN vs DAT vs Z-DAT (± shortcuts) on one workload.

A compact version of the paper's §8 comparison: one 16x16 grid, one
random-walk workload, every tracker driven through the identical
operation sequence. The traffic-conscious baselines receive the exact
edge-crossing counts of the workload (the best possible traffic
knowledge); MOT runs traffic-oblivious. Prints the three §8 metrics:
maintenance cost ratio, query cost ratio, and load distribution.

Run:  python examples/baseline_comparison.py [--side 16] [--objects 25]
"""

from __future__ import annotations

import argparse

from repro import grid_network
from repro.experiments.runner import execute_one_by_one, make_tracker
from repro.metrics.load import LoadStats
from repro.sim.workload import make_workload

ALGORITHMS = ("MOT", "MOT-balanced", "STUN", "DAT", "Z-DAT", "Z-DAT+shortcuts")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--side", type=int, default=16, help="grid side length")
    parser.add_argument("--objects", type=int, default=25)
    parser.add_argument("--moves", type=int, default=300, help="moves per object")
    parser.add_argument("--queries", type=int, default=300)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    net = grid_network(args.side, args.side)
    wl = make_workload(net, num_objects=args.objects, moves_per_object=args.moves,
                       num_queries=args.queries, seed=args.seed)
    print(f"grid {args.side}x{args.side} ({net.n} sensors), "
          f"{args.objects} objects x {args.moves} moves, {args.queries} queries\n")

    header = (f"{'algorithm':>16} | {'maint ratio':>11} | {'query ratio':>11} | "
              f"{'max load':>8} | {'load>10':>7}")
    print(header)
    print("-" * len(header))
    for name in ALGORITHMS:
        tracker = make_tracker(name, net, wl.traffic, seed=args.seed)
        ledger = execute_one_by_one(tracker, wl)
        stats = LoadStats.from_loads(tracker.load_per_node())
        print(f"{name:>16} | {ledger.maintenance_cost_ratio:>11.2f} | "
              f"{ledger.query_cost_ratio:>11.2f} | {stats.max_load:>8} | "
              f"{stats.above_threshold:>7}")

    print("\nreading guide (paper §8): MOT beats STUN on both ratios and")
    print("roughly matches Z-DAT; Z-DAT+shortcuts wins queries narrowly;")
    print("only MOT-balanced keeps every node's load small.")


if __name__ == "__main__":
    main()
