#!/usr/bin/env python3
"""Tracking through sensor failures (paper §7, tracker level).

Sensors die (battery depletion) while objects keep moving. The §7
machinery keeps the directory consistent: dying proxies hand their
objects to the closest live sensor, dying internal leaders hand their
detection lists to a cluster neighbor, and when relocation drags a
role too far from its nominal center the tracker flags a rebuild and
reconstructs the hierarchy over the survivors.

Run:  python examples/fault_tolerance.py
"""

from __future__ import annotations

import random

from repro import build_hierarchy, grid_network
from repro.core.fault_tolerant import FaultTolerantMOT


def main() -> None:
    rnd = random.Random(5)
    net = grid_network(10, 10)
    tracker = FaultTolerantMOT(build_hierarchy(net, seed=5), rebuild_radius_factor=3.0)

    objects = {f"obj{i}": rnd.choice(net.nodes) for i in range(8)}
    for obj, start in objects.items():
        tracker.publish(obj, start)
    print(f"tracking {len(objects)} objects on a {net.n}-sensor grid\n")

    failures = 0
    for step in range(200):
        # objects wander between live sensors
        obj = rnd.choice(list(objects))
        cur = tracker.proxy_of(obj)
        live_nb = [v for v in net.neighbors(cur) if v not in tracker.departed]
        if live_nb:
            objects[obj] = rnd.choice(live_nb)
            tracker.move(obj, objects[obj])
        # every 25 steps a random sensor dies
        if step % 25 == 24 and len(tracker.departed) < 25:
            candidates = [v for v in net.nodes if v not in tracker.departed]
            victim = rnd.choice(candidates)
            report = tracker.handle_departure(victim)
            failures += 1
            note = []
            if report.objects_rehomed:
                note.append(f"rehomed {len(report.objects_rehomed)} object(s)")
            if report.roles_transferred:
                note.append(
                    f"moved {report.roles_transferred} role(s) / "
                    f"{report.entries_transferred} entries"
                )
            if report.triggered_rebuild_flag:
                note.append("REBUILD FLAGGED")
            print(f"t={step:3d}  sensor {victim:3d} died: "
                  + (", ".join(note) if note else "no state held"))
        # queries keep succeeding throughout
        target = rnd.choice(list(objects))
        sources = [v for v in net.nodes if v not in tracker.departed]
        res = tracker.query(target, rnd.choice(sources))
        assert res.proxy == tracker.proxy_of(target)

    print(f"\n{failures} failures survived; "
          f"{len(tracker.departed)} sensors down, "
          f"churn transfer cost {tracker.churn_cost:.0f}")
    print(f"operation cost ratios unchanged in spirit: "
          f"maintenance {tracker.ledger.maintenance_cost_ratio:.2f}, "
          f"query {tracker.ledger.query_cost_ratio:.2f}")

    if tracker.needs_rebuild:
        print("\nrelocations drifted past the threshold — rebuilding from scratch")
        tracker.rebuild(seed=6)
        print(f"rebuilt over {tracker.net.n} live sensors "
              f"(rebuild #{tracker.rebuilds})")
    # final audit on whatever hierarchy we ended with
    for obj in objects:
        res = tracker.query(obj, tracker.net.node_at(0))
        assert res.proxy == tracker.proxy_of(obj)
    print("final audit: every object located correctly")


if __name__ == "__main__":
    main()
