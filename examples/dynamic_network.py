#!/usr/bin/env python3
"""Node churn (paper §7): clusters adapt to joins/leaves at amortized O(1).

Demonstrates the §7 machinery: a leadered cluster with an embedded
de Bruijn graph absorbs a long join/leave sequence; label backfilling
keeps per-event updates constant except when the population crosses a
power of two (dimension change), and leader departures hand the
detection list to the closest surviving member. The rebuild policy
fires when churn stretches the cluster past its radius threshold.

Run:  python examples/dynamic_network.py
"""

from __future__ import annotations

import random

from repro import grid_network
from repro.core.dynamics import DynamicCluster, RebuildPolicy


def main() -> None:
    rnd = random.Random(11)
    net = grid_network(10, 10)

    center = 44
    members = net.k_neighborhood(center, 2.0)
    cluster = DynamicCluster(
        net, members, leader=center,
        policy=RebuildPolicy(nominal_radius=3.0, max_radius_growth=2.0),
    )
    cluster.detection_list.update({f"obj{i}" for i in range(5)})
    print(f"cluster around sensor {center}: {cluster.size} members, "
          f"de Bruijn dimension {cluster.embedding.dimension}")

    # churn: nearby sensors come and go (battery cycles)
    candidates = [v for v in net.k_neighborhood(center, 3.0) if v not in members]
    events = []
    for step in range(300):
        if candidates and (cluster.size <= 3 or rnd.random() < 0.5):
            ev = cluster.join(candidates.pop(rnd.randrange(len(candidates))))
        else:
            leavers = [v for v in cluster.members]
            ev = cluster.leave(rnd.choice(leavers))
            candidates.append(ev.node)
        events.append(ev)

    leader_handovers = sum(1 for e in events if e.leader_changed)
    full_updates = sum(1 for e in events if e.updated_nodes > 6)
    print(f"\n{len(events)} churn events "
          f"({sum(1 for e in events if e.kind == 'join')} joins, "
          f"{sum(1 for e in events if e.kind == 'leave')} leaves)")
    print(f"leader handovers: {leader_handovers} "
          f"(detection list transferred each time)")
    print(f"events touching the whole cluster (dimension change / handover): "
          f"{full_updates}")
    print(f"amortized updates per event: {cluster.amortized_updates():.2f} "
          f"(§7 claim: O(1))")
    print(f"threshold rebuilds: {cluster.rebuilds}")
    print(f"final: {cluster.size} members, leader {cluster.leader}, "
          f"dimension {cluster.embedding.dimension}")

    # intra-cluster routing still works after all the relabeling
    a, b = cluster.members[0], cluster.members[-1]
    hosts, cost = cluster.embedding.route(a, b)
    print(f"\nde Bruijn route {a} -> {b}: {len(hosts) - 1} hops, cost {cost:.1f}")


if __name__ == "__main__":
    main()
