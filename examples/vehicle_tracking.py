#!/usr/bin/env python3
"""Vehicle tracking on a city grid with fully concurrent operations.

The paper's concurrent scenario (§4.1.2, §8): vehicles move fast enough
that several maintenance operations per vehicle are in flight at once
(up to 10, the paper's cap), and dispatch queries overlap them. Runs
the message-level simulator — every message pays its latency (= graph
distance) — and shows the paper's stale-proxy behaviour: queries that
reach an outdated proxy wait for the delete message carrying the
vehicle's forwarding address.

Run:  python examples/vehicle_tracking.py
"""

from __future__ import annotations

import random

from repro import build_hierarchy, grid_network
from repro.sim.concurrent_mot import ConcurrentMOT
from repro.sim.mobility import waypoint_trajectories


def main() -> None:
    rnd = random.Random(3)

    # a 12x12 downtown grid
    net = grid_network(12, 12)
    print(f"city grid: {net.n} intersections, diameter {net.diameter:.0f}")

    tracker = ConcurrentMOT(build_hierarchy(net, seed=3))

    vehicles = waypoint_trajectories(net, num_objects=6, moves_per_object=60,
                                     seed=3, object_prefix="vehicle")
    for vid, trail in vehicles.items():
        tracker.publish(vid, trail[0])

    # submit each vehicle's moves in bursts of 10 concurrent operations
    # (the §8 cap) and sprinkle dispatch queries while they are in flight
    BATCH = 10
    total_queries = 0
    for vid, trail in vehicles.items():
        steps = trail[1:]
        for i in range(0, len(steps), BATCH):
            t0 = tracker.engine.now
            for k, node in enumerate(steps[i : i + BATCH]):
                tracker.submit_move(t0 + 0.05 * k, vid, node)
            # dispatch asks for two random vehicles mid-flight
            for _ in range(2):
                target = rnd.choice(list(vehicles))
                tracker.submit_query(t0 + 0.1, target, rnd.choice(net.nodes))
                total_queries += 1
            tracker.run()

    led = tracker.ledger
    print(f"\nsimulated time: {tracker.engine.now:.0f} units, "
          f"{tracker.engine.events_processed} message events")
    print(f"{led.maintenance_ops} maintenance ops "
          f"(≤ {BATCH} concurrent per vehicle), {total_queries} queries")
    print(f"maintenance cost ratio: {led.maintenance_cost_ratio:.2f}")
    print(f"query cost ratio:       {led.query_cost_ratio:.2f}")
    print(f"queries resolved by fallback: {tracker.fallback_queries} (should be 0)")

    # after the burst storm quiesces, every vehicle is exactly where the
    # structure says it is
    for vid, trail in vehicles.items():
        tracker.submit_query(tracker.engine.now, vid, net.node_at(0))
        tracker.run()
        found = tracker.query_results[-1].proxy
        assert found == trail[-1], (vid, found, trail[-1])
    print("\nfinal audit: all vehicles located correctly after quiescence")


if __name__ == "__main__":
    main()
