#!/usr/bin/env python3
"""Habitat monitoring: animals over a random unit-disk sensor deployment.

The paper's motivating application (§1): sensors scattered over a
habitat, animals roaming with waypoint mobility, rangers querying for
individual animals from arbitrary gateway sensors. Uses the §5
load-balanced tracker so no memory-constrained sensor accumulates the
whole detection load, and reports both cost ratios and the load
distribution.

Run:  python examples/habitat_monitoring.py
"""

from __future__ import annotations

import random
import statistics

from repro import BalancedMOTTracker, build_hierarchy, random_geometric_network
from repro.metrics.load import LoadStats
from repro.sim.mobility import waypoint_trajectories


def main() -> None:
    rnd = random.Random(7)

    # a 150-sensor unit-disk deployment (constant-doubling, paper §2.2)
    net = random_geometric_network(150, seed=7)
    print(f"deployment: {net.n} sensors, diameter {net.diameter:.1f}")

    hs = build_hierarchy(net, seed=7)
    tracker = BalancedMOTTracker(hs)

    # a dozen collared animals wandering between waypoints
    animals = waypoint_trajectories(net, num_objects=12, moves_per_object=80,
                                    seed=7, object_prefix="animal")
    for animal, trail in animals.items():
        tracker.publish(animal, trail[0])
    print(f"published {len(animals)} animals")

    # interleave the animals' movements; rangers query as they go
    cursors = {a: 0 for a in animals}
    queries_ok = 0
    pending = [a for a, t in animals.items() for _ in t[1:]]
    rnd.shuffle(pending)
    for animal in pending:
        i = cursors[animal]
        tracker.move(animal, animals[animal][i + 1])
        cursors[animal] = i + 1
        if rnd.random() < 0.1:  # a ranger asks for a random animal
            target = rnd.choice(list(animals))
            res = tracker.query(target, rnd.choice(net.nodes))
            assert res.proxy == animals[target][cursors[target]]
            queries_ok += 1

    led = tracker.ledger
    print(f"\n{led.maintenance_ops} maintenance ops, {queries_ok} ranger queries")
    print(f"maintenance cost ratio: {led.maintenance_cost_ratio:.2f}")
    print(f"query cost ratio:       {led.query_cost_ratio:.2f}")

    # the §5 pay-off: detection load spread over the deployment
    load = tracker.load_per_node()
    stats = LoadStats.from_loads(load)
    print(f"\nload distribution over {stats.nodes} sensors "
          f"(objects + bookkeeping entries):")
    print(f"  max {stats.max_load}, mean {stats.mean_load:.1f}, "
          f"median {statistics.median(load.values()):.0f}, "
          f"sensors above {stats.threshold}: {stats.above_threshold}")
    hist = stats.histogram(load)
    for bucket, count in hist.items():
        print(f"  load {bucket:>6}: {'#' * min(count, 60)} ({count})")


if __name__ == "__main__":
    main()
